"""Scaling study — scheduler behaviour vs SoC size.

The paper demonstrates Algorithm 1 on 15 cores.  This study runs the
full flow on synthetic grid SoCs from 9 to 100 cores and records, per
size: schedule length vs the sequential baseline, simulation effort,
discards, and wall-clock runtime.  It documents the practical claim
behind the paper's "rapid": the heuristic's cost is dominated by the
(cheap) STC evaluations plus one thermal solve per attempted session,
so it scales to SoCs far larger than the paper's platform.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..core.scheduler import SchedulerConfig, ThermalAwareScheduler
from ..core.session_model import SessionModelConfig, SessionThermalModel
from ..soc.library import grid_soc
from ..thermal.simulator import ThermalSimulator
from .reporting import format_table

#: Grid sides swept by default: 9, 25, 64, 100 cores.
DEFAULT_SIDES = (3, 5, 8, 10)


@dataclass(frozen=True)
class ScalingPoint:
    """One SoC size's outcome.

    Attributes
    ----------
    n_cores:
        Number of cores (grid side squared).
    tl_c, stcl:
        The limits derived for this SoC (see :func:`run_scaling_study`).
    length_s:
        Thermal-aware schedule length.
    sequential_s:
        The sequential baseline's length (== core count here).
    effort_s:
        Simulation effort spent.
    n_discarded:
        Sessions rejected by thermal validation.
    runtime_s:
        Wall-clock scheduling time (network build excluded).
    """

    n_cores: int
    tl_c: float
    stcl: float
    length_s: float
    sequential_s: float
    effort_s: float
    n_discarded: int
    runtime_s: float

    @property
    def speedup_vs_sequential(self) -> float:
        """Test-time reduction over one-core-at-a-time testing."""
        return self.sequential_s / self.length_s


def run_scaling_study(
    sides: tuple[int, ...] = DEFAULT_SIDES,
    seed: int = 7,
    power_scale: float = 2.0,
) -> tuple[ScalingPoint, ...]:
    """Run the size sweep.

    TL and STCL cannot be shared across sizes (each SoC has its own
    thermal regime), so they are derived per SoC with the same recipe
    used to calibrate alpha15: TL halfway between the hottest singleton
    and the all-active peak; STCL at 3x the largest singleton STC.
    """
    points = []
    for side in sides:
        soc = grid_soc(side, side, seed=seed, power_scale=power_scale)
        simulator = ThermalSimulator(soc.floorplan, soc.package, soc.adjacency)
        model = SessionThermalModel(soc, SessionModelConfig())

        singleton_peak = max(
            simulator.steady_state({n: soc[n].test_power_w}).temperature_c(n)
            for n in soc.core_names
        )
        all_active_peak = simulator.steady_state(
            soc.test_power_map()
        ).max_temperature_c()
        tl_c = (singleton_peak + all_active_peak) / 2.0
        stcl = 3.0 * max(
            model.session_thermal_characteristic([n]) for n in soc.core_names
        )

        scheduler = ThermalAwareScheduler(
            soc,
            simulator=simulator,
            session_model=model,
            config=SchedulerConfig(max_discards=10_000),
        )
        started = time.perf_counter()
        result = scheduler.schedule(tl_c, stcl)
        runtime = time.perf_counter() - started

        points.append(
            ScalingPoint(
                n_cores=side * side,
                tl_c=tl_c,
                stcl=stcl,
                length_s=result.length_s,
                sequential_s=float(len(soc)),
                effort_s=result.effort_s,
                n_discarded=result.n_discarded,
                runtime_s=runtime,
            )
        )
    return tuple(points)


def report_scaling_study(points: tuple[ScalingPoint, ...] | None = None) -> str:
    """Human-readable report of the scaling study."""
    if points is None:
        points = run_scaling_study()
    rows = [
        (
            p.n_cores,
            f"{p.tl_c:.0f}",
            p.length_s,
            f"{p.speedup_vs_sequential:.1f}x",
            p.effort_s,
            p.n_discarded,
            f"{p.runtime_s * 1e3:.0f} ms",
        )
        for p in points
    ]
    return format_table(
        [
            "cores",
            "TL (degC)",
            "length (s)",
            "vs sequential",
            "effort (s)",
            "discards",
            "runtime",
        ],
        rows,
        title="Scaling study — thermal-aware scheduling on synthetic grid SoCs",
    )


def main() -> None:
    """Console entry point."""
    print(report_scaling_study())


if __name__ == "__main__":
    main()

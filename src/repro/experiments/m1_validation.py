"""M1 validation study — is steady state really an upper bound?

The paper's modification M1 validates sessions against steady-state
temperatures on the grounds that they upper-bound the transient
profile.  This experiment quantifies that claim on the calibrated
alpha15 platform:

1. generate a schedule at a mid-grid operating point;
2. per session, compare the steady-state prediction against the
   transient peak when the session runs from ambient (the theorem
   case);
3. re-run the comparison with the whole schedule simulated
   back-to-back (heat carry-over) and with increasing inter-session
   cooling gaps.

Reported: whether the bound holds in each regime and by how much —
i.e. how conservative the paper's simplification is for 1 s sessions
under a realistic package (whose thermal time constants are minutes).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.scheduler import ThermalAwareScheduler
from ..core.session_model import SessionModelConfig, SessionThermalModel
from ..soc.library import ALPHA15_STC_SCALE, alpha15_soc
from ..soc.system import SocUnderTest
from ..thermal.simulator import ThermalSimulator
from ..thermal.validation import (
    ScheduleBoundCheck,
    check_schedule_bound,
    check_session_bound,
)
from .reporting import format_table

#: Operating point for the study (mid-grid).
TL_C = 165.0
STCL = 60.0

#: Cooling gaps swept in the carry-over study (seconds).
COOLING_GAPS_S = (0.0, 0.5, 2.0)


@dataclass(frozen=True)
class M1Report:
    """Results of the M1 validation study.

    Attributes
    ----------
    from_ambient:
        Per-session checks with each session started from ambient.
    with_carry_over:
        Whole-schedule checks, one per cooling gap.
    """

    from_ambient: tuple
    with_carry_over: tuple[ScheduleBoundCheck, ...]

    @property
    def ambient_bound_holds(self) -> bool:
        """M1's theorem case: every from-ambient check passes."""
        return all(check.holds for check in self.from_ambient)

    @property
    def back_to_back_holds(self) -> bool:
        """The stronger statement: holds even with zero cooling gap."""
        return self.with_carry_over[0].holds


def run_m1_validation(
    soc: SocUnderTest | None = None,
    tl_c: float = TL_C,
    stcl: float = STCL,
    cooling_gaps_s: tuple[float, ...] = COOLING_GAPS_S,
    dt: float = 2e-3,
) -> M1Report:
    """Run the study and return the structured report."""
    if soc is None:
        soc = alpha15_soc()
    simulator = ThermalSimulator(soc.floorplan, soc.package, soc.adjacency)
    model = SessionThermalModel(
        soc, SessionModelConfig(stc_scale=ALPHA15_STC_SCALE)
    )
    result = ThermalAwareScheduler(
        soc, simulator=simulator, session_model=model
    ).schedule(tl_c, stcl)

    from_ambient = tuple(
        check_session_bound(simulator, soc, list(session.cores), dt=dt)
        for session in result.schedule
    )
    with_carry_over = tuple(
        check_schedule_bound(simulator, result.schedule, gap, dt=dt)
        for gap in cooling_gaps_s
    )
    return M1Report(from_ambient=from_ambient, with_carry_over=with_carry_over)


def report_m1_validation(report: M1Report | None = None) -> str:
    """Human-readable report of the M1 study."""
    if report is None:
        report = run_m1_validation()

    rows = []
    for index, check in enumerate(report.from_ambient, start=1):
        rows.append(
            (
                f"session {index}",
                "+".join(check.cores),
                max(check.steady_c.values()),
                max(check.transient_peak_c.values()),
                check.min_margin_c,
                "yes" if check.holds else "NO",
            )
        )
    table1 = format_table(
        [
            "session",
            "cores",
            "steady max (degC)",
            "transient peak (degC)",
            "min margin (degC)",
            "bound holds",
        ],
        rows,
        title="M1 from ambient: steady-state prediction vs transient peak",
    )

    rows2 = []
    for check in report.with_carry_over:
        rows2.append(
            (
                f"{check.cooling_gap_s:g}",
                check.min_margin_c,
                "yes" if check.holds else "NO",
            )
        )
    table2 = format_table(
        ["cooling gap (s)", "tightest margin (degC)", "bound holds"],
        rows2,
        title="M1 with heat carry-over (whole schedule back to back)",
    )

    verdict = (
        "M1 validated: steady-state session temperatures upper-bound the\n"
        "transient peaks, from ambient and back-to-back; the margins show\n"
        "how conservative the paper's simplification is for 1 s sessions\n"
        "under a package with minute-scale thermal time constants.\n"
        if report.ambient_bound_holds and report.back_to_back_holds
        else "WARNING: the M1 bound was violated in at least one regime —\n"
        "see the tables above.\n"
    )
    return table1 + "\n" + table2 + "\n" + verdict


def main() -> None:
    """Console entry point."""
    print(report_m1_validation())


if __name__ == "__main__":
    main()

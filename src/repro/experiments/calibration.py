"""Calibration report for the alpha15 reproduction platform.

The paper never published its per-core test powers or the RC constants
behind its STCL axis, so this reproduction calibrates both (DESIGN.md,
substitution 3).  This module *verifies and documents* the frozen
calibration in :mod:`repro.soc.library`:

* every core tested alone stays well below the tightest limit
  TL = 145 degC (phase A of Algorithm 1 must pass);
* testing all 15 cores concurrently overshoots the loosest limit
  TL = 185 degC (so the TL sweep bites);
* every singleton session's STC is below the tightest STCL of 20 (a
  core whose singleton STC exceeded the limit could never be scheduled
  by the paper's pseudocode);
* test multipliers all lie in the paper's 1.5x-8x range.

Run ``python -m repro.experiments.calibration`` to print the report;
the integration tests assert the same invariants.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.session_model import SessionModelConfig, SessionThermalModel
from ..soc.library import ALPHA15_STC_SCALE, alpha15_soc
from ..soc.system import SocUnderTest
from ..thermal.simulator import ThermalSimulator
from .reporting import format_table

#: The regime the calibration must bracket (the paper's sweep corners).
TIGHTEST_TL_C = 145.0
LOOSEST_TL_C = 185.0
TIGHTEST_STCL = 20.0


@dataclass(frozen=True)
class CalibrationReport:
    """Measured calibration properties of a SoC.

    Attributes
    ----------
    singleton_max_c:
        Hottest single-core steady-state temperature.
    all_active_max_c:
        Peak temperature with every core active at once.
    singleton_stc:
        Per-core singleton session thermal characteristic.
    multipliers:
        Per-core test-to-functional power multipliers.
    """

    singleton_max_c: float
    all_active_max_c: float
    singleton_stc: dict[str, float]
    multipliers: dict[str, float]

    @property
    def brackets_paper_regime(self) -> bool:
        """True when the SoC brackets the paper's whole (TL, STCL) sweep."""
        return (
            self.singleton_max_c < TIGHTEST_TL_C
            and self.all_active_max_c > LOOSEST_TL_C
            and max(self.singleton_stc.values()) <= TIGHTEST_STCL
            and all(1.5 <= m <= 8.0 for m in self.multipliers.values())
        )


def run_calibration(
    soc: SocUnderTest | None = None, stc_scale: float = ALPHA15_STC_SCALE
) -> CalibrationReport:
    """Measure the calibration invariants of a SoC."""
    if soc is None:
        soc = alpha15_soc()
    simulator = ThermalSimulator(soc.floorplan, soc.package, soc.adjacency)
    model = SessionThermalModel(soc, SessionModelConfig(stc_scale=stc_scale))

    singleton_max = 0.0
    singleton_stc: dict[str, float] = {}
    for name in soc.core_names:
        field = simulator.steady_state({name: soc[name].test_power_w})
        singleton_max = max(singleton_max, field.temperature_c(name))
        singleton_stc[name] = model.session_thermal_characteristic([name])
    all_active = simulator.steady_state(soc.test_power_map())

    return CalibrationReport(
        singleton_max_c=singleton_max,
        all_active_max_c=all_active.max_temperature_c(),
        singleton_stc=singleton_stc,
        multipliers={c.name: c.test_multiplier for c in soc},
    )


def report_calibration(report: CalibrationReport | None = None) -> str:
    """Human-readable calibration report."""
    if report is None:
        report = run_calibration()
    rows = [
        (name, report.singleton_stc[name], report.multipliers[name])
        for name in report.singleton_stc
    ]
    table = format_table(
        ["core", "singleton STC", "test multiplier"],
        rows,
        title="alpha15 calibration (frozen constants in repro.soc.library)",
    )
    status = "OK" if report.brackets_paper_regime else "OUT OF REGIME"
    return table + (
        f"\nhottest core alone: {report.singleton_max_c:.1f} degC "
        f"(must be < {TIGHTEST_TL_C:g})\n"
        f"all cores at once:  {report.all_active_max_c:.1f} degC "
        f"(must be > {LOOSEST_TL_C:g})\n"
        f"max singleton STC:  {max(report.singleton_stc.values()):.2f} "
        f"(must be <= {TIGHTEST_STCL:g})\n"
        f"calibration status: {status}\n"
    )


def main() -> None:
    """Console entry point."""
    print(report_calibration())


if __name__ == "__main__":
    main()

"""Result records for the paper's experiments.

Plain frozen dataclasses — one per table row / figure point — with
``as_dict`` converters for CSV export.  Keeping these separate from the
drivers lets tests assert on structured results without parsing report
text.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass


@dataclass(frozen=True)
class Fig1Result:
    """Outcome of the Figure 1 motivational experiment.

    Attributes
    ----------
    power_limit_w:
        The chip-level power cap (paper: 45 W).
    session_hot, session_cool:
        The two compared sessions (paper: TS1 = {C2,C3,C4},
        TS2 = {C5,C6,C7}).
    hot_power_w, cool_power_w:
        Summed session powers (both must pass the cap).
    hot_accepted, cool_accepted:
        Whether a power-constrained scheduler accepts each session.
    hot_max_c, cool_max_c:
        Simulated peak temperature of each session.
    """

    power_limit_w: float
    session_hot: tuple[str, ...]
    session_cool: tuple[str, ...]
    hot_power_w: float
    cool_power_w: float
    hot_accepted: bool
    cool_accepted: bool
    hot_max_c: float
    cool_max_c: float

    @property
    def discrepancy_c(self) -> float:
        """Temperature gap between the two power-equivalent sessions."""
        return self.hot_max_c - self.cool_max_c

    def as_dict(self) -> dict:
        """Flat dict for CSV export."""
        data = asdict(self)
        data["session_hot"] = "+".join(self.session_hot)
        data["session_cool"] = "+".join(self.session_cool)
        data["discrepancy_c"] = self.discrepancy_c
        return data


@dataclass(frozen=True)
class SweepPoint:
    """One (TL, STCL) scheduling run — a Table 1 row / Figure 5 sample.

    Attributes mirror the paper's Table 1 columns plus diagnostics.
    """

    tl_c: float
    stcl: float
    length_s: float
    effort_s: float
    max_temperature_c: float
    n_sessions: int
    n_discarded: int
    forced_singletons: int

    def as_dict(self) -> dict:
        """Flat dict for CSV export."""
        return asdict(self)

    @property
    def first_attempt_safe(self) -> bool:
        """True when no session had to be discarded (effort == length)."""
        return self.n_discarded == 0


@dataclass(frozen=True)
class WorkedExampleRow:
    """Session-model quantities of one active core (Figures 3-4)."""

    core: str
    active_neighbours: tuple[str, ...]
    passive_neighbours: tuple[str, ...]
    equivalent_resistance: float
    thermal_characteristic: float
    stc_contribution: float

    def as_dict(self) -> dict:
        """Flat dict for CSV export."""
        data = asdict(self)
        data["active_neighbours"] = "+".join(self.active_neighbours)
        data["passive_neighbours"] = "+".join(self.passive_neighbours)
        return data

"""Ablation study — the design choices behind Algorithm 1.

Three knobs the paper fixes without exploring, swept here on the
calibrated alpha15 platform over a compact (TL, STCL) probe grid:

* **weight escalation factor** — the paper multiplies violators'
  weights by 1.1; we compare no feedback (1.0), the paper's 1.1, and
  aggressive 1.5 / 2.0;
* **session-model modifications** — M2 (drop active-active
  resistances) and M3 (ground passive cores) toggled off, and the
  vertical heat path toggled on;
* **candidate scan order** — the paper's input order vs power-,
  area- and density-based orders.

For every variant the study reports total schedule length, total
simulation effort, discards and forced singletons, summed over the
probe grid — the quality/effort frontier each design choice buys.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.scheduler import SchedulerConfig, ThermalAwareScheduler
from ..core.session_model import SessionModelConfig, SessionThermalModel
from ..errors import ScheduleInfeasibleError
from ..soc.library import ALPHA15_STC_SCALE, alpha15_soc
from ..soc.system import SocUnderTest
from ..thermal.simulator import ThermalSimulator
from .reporting import format_table

#: Compact probe grid: one tight, one mid, one loose point.
PROBE_GRID = ((155.0, 30.0), (165.0, 60.0), (185.0, 90.0))


@dataclass(frozen=True)
class AblationRow:
    """Aggregated outcome of one variant over the probe grid.

    Attributes
    ----------
    group, variant:
        Which knob and which setting.
    total_length_s, total_effort_s:
        Sums over the probe grid.
    total_discards, total_forced:
        Summed diagnostic counters.
    converged:
        False when any probe point exhausted ``max_discards``.
    """

    group: str
    variant: str
    total_length_s: float
    total_effort_s: float
    total_discards: int
    total_forced: int
    converged: bool


def _run_variant(
    group: str,
    variant: str,
    soc: SocUnderTest,
    simulator: ThermalSimulator,
    model: SessionThermalModel,
    config: SchedulerConfig,
) -> AblationRow:
    scheduler = ThermalAwareScheduler(
        soc, simulator=simulator, session_model=model, config=config
    )
    length = effort = 0.0
    discards = forced = 0
    converged = True
    for tl_c, stcl in PROBE_GRID:
        try:
            result = scheduler.schedule(tl_c, stcl)
        except ScheduleInfeasibleError:
            converged = False
            continue
        length += result.length_s
        effort += result.effort_s
        discards += result.n_discarded
        forced += result.forced_singletons
    return AblationRow(
        group=group,
        variant=variant,
        total_length_s=length,
        total_effort_s=effort,
        total_discards=discards,
        total_forced=forced,
        converged=converged,
    )


def run_ablations(soc: SocUnderTest | None = None) -> tuple[AblationRow, ...]:
    """Run every ablation variant over the probe grid."""
    if soc is None:
        soc = alpha15_soc()
    simulator = ThermalSimulator(soc.floorplan, soc.package, soc.adjacency)
    paper_model = SessionThermalModel(
        soc, SessionModelConfig(stc_scale=ALPHA15_STC_SCALE)
    )
    rows: list[AblationRow] = []

    # 1. Weight factor sweep.
    for factor in (1.0, 1.1, 1.5, 2.0):
        label = f"{factor:g}" + (" (paper)" if factor == 1.1 else "")
        rows.append(
            _run_variant(
                "weight-factor",
                label,
                soc,
                simulator,
                paper_model,
                SchedulerConfig(weight_factor=factor, max_discards=400),
            )
        )

    # 2. Session-model modification ablations.
    model_variants = {
        "paper (M2+M3, lateral)": SessionModelConfig(
            stc_scale=ALPHA15_STC_SCALE
        ),
        "no M2 (keep active-active)": SessionModelConfig(
            drop_active_active=False, stc_scale=ALPHA15_STC_SCALE
        ),
        "no M3 (float passives)": SessionModelConfig(
            ground_passive=False, stc_scale=ALPHA15_STC_SCALE
        ),
        "with vertical path": SessionModelConfig(
            include_vertical=True, stc_scale=ALPHA15_STC_SCALE
        ),
    }
    for label, model_config in model_variants.items():
        rows.append(
            _run_variant(
                "session-model",
                label,
                soc,
                simulator,
                SessionThermalModel(soc, model_config),
                SchedulerConfig(),
            )
        )

    # 3. Candidate scan order.
    for order in ("input", "power_desc", "area_asc", "density_desc"):
        label = order + (" (paper)" if order == "input" else "")
        rows.append(
            _run_variant(
                "candidate-order",
                label,
                soc,
                simulator,
                paper_model,
                SchedulerConfig(candidate_order=order),
            )
        )
    return tuple(rows)


def report_ablations(rows: tuple[AblationRow, ...] | None = None) -> str:
    """Human-readable ablation report."""
    if rows is None:
        rows = run_ablations()
    table_rows = [
        (
            r.group,
            r.variant,
            r.total_length_s,
            r.total_effort_s,
            r.total_discards,
            r.total_forced,
            "yes" if r.converged else "NO",
        )
        for r in rows
    ]
    table = format_table(
        [
            "knob",
            "variant",
            "sum length (s)",
            "sum effort (s)",
            "discards",
            "forced",
            "converged",
        ],
        table_rows,
        title=(
            "Ablations over probe grid "
            + ", ".join(f"(TL={t:g}, STCL={s:g})" for t, s in PROBE_GRID)
        ),
    )
    return table + (
        "\nReading: lower length at equal effort is better; the paper's\n"
        "1.1 weight factor trades a little length for far fewer discards\n"
        "than no feedback; dropping M2/M3 changes how optimistic the STC\n"
        "screen is (more/less simulation effort downstream).\n"
    )


def main() -> None:
    """Console entry point."""
    print(report_ablations())


if __name__ == "__main__":
    main()

"""Bounded TTL answer cache for the scheduling service.

In-flight deduplication (PR 4) collapses *concurrent* identical
requests; the moment a job resolves, its answer was dropped and the
next identical request paid a full solve.  :class:`AnswerCache` keeps
those answers: a bounded, TTL-expiring LRU map from
:meth:`~repro.api.ScheduleRequest.content_hash` to the resolved
:class:`~repro.service.execution.SolveOutcome`, so dashboard-style
repeat traffic is absorbed without touching the queue or a worker.

Design points:

* **Same key as dedup and the archive** — the content hash already
  names an answer everywhere in the system (in-flight map, wire frames,
  archive records), so the cache composes with all of them: a service
  can :func:`warm_cache_from_archive` at boot and serve yesterday's
  fleet traffic from memory.
* **Injectable clock** — expiry is computed against a caller-supplied
  monotonic clock, so TTL behaviour is unit-testable without sleeping.
* **Failures are not cached** — only ``ok`` outcomes are stored; an
  infeasible request re-solving is cheap insurance against caching a
  transient failure (a broken pool, a timeout) forever.
* **Stale means miss** — an expired entry is removed and counted, and
  the caller proceeds to a fresh solve; expired data is never served.

The cache itself is transport-agnostic and thread-safe (the warm-start
loader runs on an executor thread while the event loop may already be
serving).
"""

from __future__ import annotations

import json
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable

from ..api.request import report_from_dict
from ..errors import SchedulingError, ServiceError
from ..reactive import ReactiveRunReport
from .execution import SolveOutcome


@dataclass(frozen=True)
class AnswerCacheStats:
    """Point-in-time counters of an :class:`AnswerCache`.

    Attributes
    ----------
    hits:
        Lookups answered from the cache.
    misses:
        Lookups that found nothing (expired entries included).
    entries:
        Answers currently stored.
    evictions:
        Entries dropped by the LRU bound.
    expirations:
        Entries dropped because their TTL elapsed (a subset of what
        would otherwise have been hits — the staleness price).
    warmed:
        Distinct answers replayed from an archive at boot (the LRU
        bound may retain fewer when the archive outsizes the cache).
    """

    hits: int
    misses: int
    entries: int
    evictions: int
    expirations: int
    warmed: int = 0

    @property
    def lookups(self) -> int:
        """Total lookups."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0 when unused)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready form (nested in the stats wire frame)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "entries": self.entries,
            "evictions": self.evictions,
            "expirations": self.expirations,
            "warmed": self.warmed,
        }

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (
            f"answer cache: {self.hits} hits / {self.lookups} lookups "
            f"({self.hit_rate * 100:.0f}%), {self.entries} entries, "
            f"{self.evictions} evictions, {self.expirations} expired, "
            f"{self.warmed} warmed"
        )


class AnswerCache:
    """Bounded LRU + TTL map from request content hash to solve outcome.

    Parameters
    ----------
    max_entries:
        LRU bound; the oldest entry is dropped when a put exceeds it.
    ttl_s:
        Time-to-live per entry (``None`` = never expires).  An entry's
        clock starts at :meth:`put` (a refresh restarts it); a
        :meth:`get` past the deadline removes the entry and reports a
        miss, so stale answers trigger a fresh solve instead of being
        served.
    clock:
        Monotonic time source; injectable so TTL tests need no sleeps.
    """

    def __init__(
        self,
        max_entries: int = 256,
        ttl_s: float | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if max_entries < 1:
            raise ServiceError(
                f"answer cache max_entries must be >= 1, got {max_entries!r}"
            )
        if ttl_s is not None and ttl_s <= 0.0:
            raise ServiceError(
                f"answer cache ttl_s must be positive, got {ttl_s!r}"
            )
        self._max_entries = max_entries
        self._ttl_s = ttl_s
        self._clock = clock
        #: key -> (outcome, stored_at); ordered oldest-use first.
        self._entries: "OrderedDict[str, tuple[SolveOutcome, float]]" = (
            OrderedDict()  # guarded-by: _lock
        )
        #: Streamed-run timelines, keyed like (and subordinate to)
        #: ``_entries``: a timeline never outlives its answer, so a hit
        #: with a stored timeline can replay it instead of
        #: re-simulating the whole closed-loop transient run.
        self._reactive: "dict[str, ReactiveRunReport]" = {}  # guarded-by: _lock
        self._lock = threading.Lock()
        self._hits = 0  # guarded-by: _lock
        self._misses = 0  # guarded-by: _lock
        self._evictions = 0  # guarded-by: _lock
        self._expirations = 0  # guarded-by: _lock
        self._warmed = 0  # guarded-by: _lock

    @property
    def max_entries(self) -> int:
        """The LRU bound."""
        return self._max_entries

    @property
    def ttl_s(self) -> float | None:
        """Per-entry time-to-live (``None`` = never expires)."""
        return self._ttl_s

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        """Non-mutating membership probe (expiry *not* applied)."""
        with self._lock:
            return key in self._entries

    @property
    def stats(self) -> AnswerCacheStats:
        """Current counters (snapshot)."""
        with self._lock:
            return AnswerCacheStats(
                hits=self._hits,
                misses=self._misses,
                entries=len(self._entries),
                evictions=self._evictions,
                expirations=self._expirations,
                warmed=self._warmed,
            )

    def get(self, key: str) -> SolveOutcome | None:
        """The cached outcome for *key*, or ``None`` (miss or expired).

        A hit refreshes the entry's LRU position but not its TTL clock:
        an answer's staleness is measured from when it was computed,
        not from when it was last popular.
        """
        now = self._clock()
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._misses += 1
                return None
            outcome, stored_at = entry
            if self._ttl_s is not None and now - stored_at >= self._ttl_s:
                del self._entries[key]
                self._reactive.pop(key, None)
                self._expirations += 1
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return outcome

    def put(self, key: str, outcome: SolveOutcome) -> None:
        """Store (or refresh) the answer for *key*.

        Only ``ok`` outcomes are stored: caching a failure would pin a
        possibly transient error (timeout, broken pool) until expiry.
        """
        if not outcome.ok:
            return
        with self._lock:
            self._entries[key] = (outcome, self._clock())
            self._entries.move_to_end(key)
            while len(self._entries) > self._max_entries:
                evicted, _ = self._entries.popitem(last=False)
                self._reactive.pop(evicted, None)
                self._evictions += 1

    def put_reactive(self, key: str, report: ReactiveRunReport) -> None:
        """Attach a streamed run's timeline to an already-stored answer.

        A no-op when *key* has no live entry (evicted or expired since
        the solve resolved) — a timeline must never outlive the answer
        it explains.  The entry's TTL clock and LRU position are left
        untouched: the timeline is derived data, not a refresh.
        """
        with self._lock:
            if key in self._entries:
                self._reactive[key] = report

    def reactive_report(self, key: str) -> ReactiveRunReport | None:
        """The stored streamed-run timeline for *key*, or ``None``.

        Non-mutating (no counters, no LRU refresh): callers probe this
        right after a :meth:`get` hit, which already validated the
        entry's liveness — replaying the timeline then spares the whole
        closed-loop transient re-simulation.
        """
        with self._lock:
            return self._reactive.get(key)

    def note_warmed(self, count: int) -> None:
        """Record *count* entries as archive-warmed (stats provenance)."""
        with self._lock:
            self._warmed += count

    def clear(self) -> None:
        """Drop every entry and zero the counters."""
        with self._lock:
            self._entries.clear()
            self._reactive.clear()
            self._hits = 0
            self._misses = 0
            self._evictions = 0
            self._expirations = 0
            self._warmed = 0


def _iter_lines_reversed(path: Path, block_size: int = 1 << 20):
    """Yield a file's lines last-to-first, reading fixed-size blocks.

    A service archive only grows; warming a bounded cache must not
    cost archive-sized memory, so the newest-first scan reads from the
    end in *block_size* chunks and holds at most one block plus the
    line being assembled.
    """
    with path.open("rb") as handle:
        handle.seek(0, 2)  # os.SEEK_END
        position = handle.tell()
        tail = b""
        while position > 0:
            read_size = min(block_size, position)
            position -= read_size
            handle.seek(position)
            block = handle.read(read_size) + tail
            lines = block.split(b"\n")
            tail = lines[0]  # may be a partial line; merged next block
            for line in reversed(lines[1:]):
                yield line
        if tail:
            yield tail


def warm_cache_from_archive(
    cache: AnswerCache, path: str | Path
) -> int:
    """Populate *cache* from a service archive's ``ok`` records.

    Each successful record's embedded report is decoded (schedule
    revalidated against a rebuilt SoC, exactly like a client decoding
    the wire) and stored under its recorded ``request_hash``, so a
    rebooted service answers yesterday's repeat traffic from memory
    before its first solve.  Later records for the same hash win
    (append order is completion order).  Error records, batch-dialect
    records and undecodable records are skipped — a warm-start is an
    optimisation and must never stop a service from booting.

    Decoding is the expensive part (every report's schedule is
    revalidated), so candidates are selected by streaming the file's
    raw lines newest-first in bounded blocks and JSON-parsing lazily:
    the scan stops as soon as the cache's LRU bound is filled,
    superseded re-solves of the same hash are dropped before decoding,
    and older lines are never read at all — a months-old append-only
    archive warms a 256-entry cache with memory bounded by the block
    size and (essentially) at most 256 report decodes.  Unparsable
    lines (e.g. a torn trailing append from a crashed previous life)
    and undecodable records are skipped without consuming the budget,
    so schema-drifted newest records do not hide decodable older ones.

    Returns the number of *distinct* answers loaded (re-solves of the
    same question in the archive refresh one entry, they do not
    inflate the count).

    TTL caveat: warmed entries get their staleness clock stamped at
    boot, not at the original solve — archive records carry no
    timestamp to restore it from.  Warm-starting is opt-in precisely
    because it asserts "this archive's answers are still good";
    solves are deterministic, so the only staleness a TTL guards
    against here is the platform definitions themselves changing
    between lives.

    Raises
    ------
    SchedulingError
        Only when the archive file itself cannot be read (a missing
        ``--warm-from`` path is a configuration error worth failing
        loudly on).
    """
    # Scan newest-first, decoding as we go: one answer per hash, at
    # most as many as the cache can hold.  A record that fails to
    # decode does not consume the budget — the scan keeps going, so an
    # archive whose newest records are schema-drifted still warms from
    # the older decodable ones behind them.
    selected: "OrderedDict[str, SolveOutcome]" = OrderedDict()
    try:
        for raw in _iter_lines_reversed(Path(path)):
            if not raw.strip():
                continue
            try:
                record = json.loads(raw)
            except (json.JSONDecodeError, UnicodeDecodeError):
                continue  # torn/hand-mangled line: skip, don't die
            if not isinstance(record, dict):
                continue
            if record.get("kind") != "service" or record.get("status") != "ok":
                continue
            key = record.get("request_hash")
            if not isinstance(record.get("report"), dict) or not isinstance(
                key, str
            ):
                continue
            if key in selected:
                continue  # a newer record for this hash already won
            try:
                outcome = SolveOutcome(
                    status="ok",
                    report=report_from_dict(record["report"]),
                    error=None,
                    error_type=None,
                    elapsed_s=float(record.get("elapsed_s") or 0.0),
                    steady_solves=int(record.get("steady_solves") or 0),
                    cache_hit=bool(record.get("cache_hit", False)),
                )
            except Exception:
                continue  # schema drift / hand-edited record: skip, don't die
            selected[key] = outcome
            if len(selected) >= cache.max_entries:
                break
    except OSError as exc:
        raise SchedulingError(f"cannot load JSONL file {path}: {exc}") from exc
    # Store oldest-of-the-chosen first, so the cache's LRU recency
    # order matches the archive's completion order.
    for key, outcome in reversed(selected.items()):
        cache.put(key, outcome)
    cache.note_warmed(len(selected))
    return len(selected)

"""Async scheduling service: job queue, worker pool, JSONL wire protocol.

The batch engine answers fleets it is handed; this subsystem turns the
library into a *traffic-serving* system — a long-lived asyncio service
that many clients feed :class:`~repro.api.ScheduleRequest`\\ s over TCP
and that answers with :class:`~repro.api.SolveReport`\\ s:

* :mod:`service` — :class:`ScheduleService`: bounded job queue,
  worker pool on the engine's execution backends, in-flight request
  deduplication by content hash, per-request timeouts, backpressure,
  graceful drain and operational metrics;
* :mod:`answer_cache` — :class:`AnswerCache`, the bounded TTL cache of
  resolved answers (same content-hash key), warm-startable from an
  archive (``repro serve --warm-from``);
* :mod:`pool` — :class:`AdaptiveWorkerPool`, the admission gate that
  scales worker concurrency between min/max with queue depth;
* :mod:`protocol` — the newline-delimited JSON frame format
  (submit/report/error/stats/ping/metrics plus the progress/event
  push frames of a streaming submit);
* :mod:`server` — :class:`ScheduleServer`, the asyncio TCP front end;
* :mod:`client` — :class:`AsyncServiceClient` (pipelined asyncio) and
  :class:`ServiceClient` (blocking wrapper);
* :mod:`archive` — the append-only JSONL archive of served outcomes;
* :mod:`report` — per-solver aggregation of batch and service archives;
* :mod:`fleet` — the sharded fleet: consistent-hash ring,
  :class:`FleetRouter` (``repro route``) with health checks, circuit
  breakers and failover, the shared :class:`RetryPolicy`, and the
  seeded :class:`ChaosProxy` fault-injection harness.

Quickstart (in one process; over TCP it is ``repro serve`` +
``repro submit``)::

    import asyncio
    from repro.api import ScheduleRequest
    from repro.service import ScheduleService

    async def main():
        async with ScheduleService(backend="thread") as service:
            report = await service.solve(
                ScheduleRequest(soc="alpha15", tl_c=165.0, stcl=60.0)
            )
            print(report.describe())

    asyncio.run(main())
"""

from .answer_cache import (
    AnswerCache,
    AnswerCacheStats,
    warm_cache_from_archive,
)
from .archive import (
    SERVICE_RECORD_KIND,
    ReportArchive,
    load_service_archive,
    outcome_record,
)
from .client import AsyncServiceClient, ServiceClient
from .execution import SolveOutcome, solve_request_outcome
from .fleet import (
    ChaosProxy,
    CircuitBreaker,
    FaultPlan,
    FleetRouter,
    HashRing,
    RetryPolicy,
    ShardHealth,
    aggregate_fleet_stats,
)
from .pool import AdaptiveWorkerPool
from .protocol import (
    DEFAULT_PORT,
    DEFAULT_ROUTER_PORT,
    MAX_FRAME_BYTES,
    PUSH_FRAME_TYPES,
    decode_frame,
    encode_frame,
    error_frame,
    event_frame,
    fleet_stats_frame,
    metrics_frame,
    parse_submit_frame,
    ping_frame,
    progress_frame,
    report_frame,
    stats_frame,
    submit_frame,
)
from .report import (
    RecordStats,
    SolverSummary,
    record_stats,
    render_summary_table,
    summarize_archives,
    summarize_records,
)
from .server import ScheduleServer
from .service import (
    BATCH_FAMILIES,
    DWELL_FAMILIES,
    LATENCY_FAMILIES,
    METRIC_FIELDS,
    MetricField,
    ScheduleService,
    ServiceJob,
    ServiceMetrics,
    render_metrics_text,
)

__all__ = [
    "AdaptiveWorkerPool",
    "AnswerCache",
    "AnswerCacheStats",
    "AsyncServiceClient",
    "ChaosProxy",
    "CircuitBreaker",
    "DEFAULT_PORT",
    "DEFAULT_ROUTER_PORT",
    "BATCH_FAMILIES",
    "DWELL_FAMILIES",
    "FaultPlan",
    "FleetRouter",
    "HashRing",
    "LATENCY_FAMILIES",
    "MAX_FRAME_BYTES",
    "METRIC_FIELDS",
    "MetricField",
    "PUSH_FRAME_TYPES",
    "RecordStats",
    "ReportArchive",
    "RetryPolicy",
    "SERVICE_RECORD_KIND",
    "ScheduleServer",
    "ScheduleService",
    "ServiceClient",
    "ServiceJob",
    "ServiceMetrics",
    "ShardHealth",
    "SolveOutcome",
    "SolverSummary",
    "aggregate_fleet_stats",
    "decode_frame",
    "encode_frame",
    "error_frame",
    "event_frame",
    "fleet_stats_frame",
    "load_service_archive",
    "metrics_frame",
    "outcome_record",
    "parse_submit_frame",
    "ping_frame",
    "progress_frame",
    "record_stats",
    "render_metrics_text",
    "render_summary_table",
    "report_frame",
    "solve_request_outcome",
    "stats_frame",
    "submit_frame",
    "summarize_archives",
    "summarize_records",
    "warm_cache_from_archive",
]

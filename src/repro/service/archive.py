"""Append-only JSONL archive of served requests and their outcomes.

The batch engine writes its archive in one shot at the end of a run; a
service never ends, so its archive is an *append* stream: one
self-contained record per resolved job, written as the job resolves.
Records embed the request (and its content hash) plus either the full
report dict or the error, so ``repro report`` can aggregate service
archives and batch archives side by side — and so a rebooted service
can replay its ``ok`` records into the answer cache
(:func:`~repro.service.answer_cache.warm_cache_from_archive`,
``repro serve --warm-from``): the archive is simultaneously the audit
log and the cache's persistence layer.
"""

from __future__ import annotations

import json
import threading
from pathlib import Path
from typing import Any, TYPE_CHECKING

from ..api.request import report_to_dict, request_to_dict
from ..core.serialize import SCHEMA_VERSION, load_jsonl

if TYPE_CHECKING:  # imported lazily to avoid a cycle with service.py
    from ..api.request import ScheduleRequest
    from .execution import SolveOutcome

#: Marker distinguishing service records from batch JobResult records.
SERVICE_RECORD_KIND = "service"


def outcome_record(
    request: "ScheduleRequest",
    outcome: "SolveOutcome",
    request_hash: str | None = None,
) -> dict[str, Any]:
    """The JSON-ready archive record of one resolved service job.

    Pass *request_hash* when the caller already holds it (the service's
    dedup key) to skip recomputing the digest.
    """
    return {
        "schema_version": SCHEMA_VERSION,
        "kind": SERVICE_RECORD_KIND,
        "status": outcome.status,
        "solver": request.solver,
        "request": request_to_dict(request),
        "request_hash": request_hash or request.content_hash(),
        "error": outcome.error,
        "error_type": outcome.error_type,
        "elapsed_s": outcome.elapsed_s,
        "steady_solves": outcome.steady_solves,
        "cache_hit": outcome.cache_hit,
        "report": None if outcome.report is None else report_to_dict(outcome.report),
    }


class ReportArchive:
    """Append-mode JSONL writer for a running service.

    Parameters
    ----------
    path:
        Archive file; missing parent directories are created (a fresh
        results dir must not kill the first request that tries to log
        to it), and the file itself is created empty up front so
        tail-followers and ``repro report`` see "no records yet"
        rather than "no such file" while the service is still idle.
    """

    def __init__(self, path: str | Path) -> None:
        self._path = Path(path)
        self._path.parent.mkdir(parents=True, exist_ok=True)
        self._path.touch(exist_ok=True)
        self._count = 0  # guarded-by: _lock
        # The service appends from worker threads (it keeps file I/O
        # off its event loop); serialise writers so lines never shear.
        self._lock = threading.Lock()

    @property
    def path(self) -> Path:
        """The archive file."""
        return self._path

    @property
    def count(self) -> int:
        """Records appended by this writer (pre-existing lines excluded)."""
        with self._lock:
            return self._count

    def append_outcome(
        self,
        request: "ScheduleRequest",
        outcome: "SolveOutcome",
        request_hash: str | None = None,
    ) -> None:
        """Append one resolved job's record."""
        self.append_record(outcome_record(request, outcome, request_hash))

    def append_record(self, record: dict[str, Any]) -> None:
        """Append one raw record (one line; opened per append, so a
        tail-following consumer always sees complete lines)."""
        line = json.dumps(record, separators=(",", ":")) + "\n"
        with self._lock:
            with self._path.open("a") as handle:
                handle.write(line)
            self._count += 1


def load_service_archive(path: str | Path) -> list[dict[str, Any]]:
    """Read every record of a service archive (blank lines skipped)."""
    return load_jsonl(path)

"""Fleet analytics over JSONL archives: the per-solver summary table.

Aggregates the two archive dialects the system writes — batch
:class:`~repro.engine.jobs.JobResult` records (``repro batch --out``)
and service outcome records (``repro serve --archive``) — into one
per-solver summary: job count, error rate, hot-spot rate, mean headroom
and mean schedule length.  Everything is computed from the raw record
dicts (no SoC rebuilds, no schedule revalidation), so summarising a
hundred-thousand-record archive is an I/O-bound streaming pass — the
seed of the ROADMAP's fleet-analytics layer.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable, Sequence

from ..core.serialize import load_jsonl
from ..errors import SchedulingError
from .archive import SERVICE_RECORD_KIND


@dataclass(frozen=True)
class RecordStats:
    """The aggregation-relevant fields of one archive record."""

    solver: str
    ok: bool
    hot_spot_rate: float
    headroom_c: float
    length_s: float
    elapsed_s: float


@dataclass(frozen=True)
class SolverSummary:
    """Aggregate of every archive record that ran one solver.

    Attributes
    ----------
    solver:
        Registered solver name.
    jobs:
        Records aggregated.
    errors:
        Records with ``status="error"``.
    hot_spot_rate:
        Mean per-job fraction of sessions whose peak reaches the job's
        TL (successful jobs only; NaN when none succeeded).
    mean_headroom_c:
        Mean ``TL - peak`` margin (successful jobs only).
    mean_length_s:
        Mean schedule length (successful jobs only).
    mean_elapsed_s:
        Mean wall-clock solve time (all jobs — errors cost time too).
    """

    solver: str
    jobs: int
    errors: int
    hot_spot_rate: float
    mean_headroom_c: float
    mean_length_s: float
    mean_elapsed_s: float

    @property
    def error_rate(self) -> float:
        """Fraction of records that failed."""
        return self.errors / self.jobs if self.jobs else 0.0


def _schedule_stats(
    result: dict[str, Any], tl_c: float
) -> tuple[float, float]:
    """(hot-spot rate, headroom) of one embedded result dict."""
    sessions = result["schedule"]["sessions"]
    temps = [
        s["max_temperature_c"]
        for s in sessions
        if s.get("max_temperature_c") is not None
    ]
    if not sessions or not temps:
        return math.nan, math.nan
    hot = sum(1 for t in temps if t >= tl_c)
    return hot / len(sessions), tl_c - max(temps)


def record_stats(record: dict[str, Any]) -> RecordStats:
    """Normalise one archive record (either dialect) for aggregation.

    Raises
    ------
    SchedulingError
        On a record that is neither a batch job record nor a service
        outcome record.
    """
    if record.get("kind") == SERVICE_RECORD_KIND or "request" in record:
        solver = record.get("solver") or record["request"].get("solver", "?")
        ok = record.get("status") == "ok"
        report = record.get("report")
        hot = headroom = length = math.nan
        if ok and report is not None:
            hot, headroom = _schedule_stats(report["result"], float(report["tl_c"]))
            length = float(report["result"]["length_s"])
        return RecordStats(
            solver=solver,
            ok=ok,
            hot_spot_rate=hot,
            headroom_c=headroom,
            length_s=length,
            elapsed_s=float(record.get("elapsed_s", math.nan)),
        )
    if "spec" in record:
        solver = record["spec"].get("solver", "thermal_aware")
        ok = record.get("status") == "ok"
        result = record.get("result")
        hot = headroom = length = math.nan
        if ok and result is not None and record.get("tl_c") is not None:
            hot, headroom = _schedule_stats(result, float(record["tl_c"]))
            length = float(result["length_s"])
        return RecordStats(
            solver=solver,
            ok=ok,
            hot_spot_rate=hot,
            headroom_c=headroom,
            length_s=length,
            elapsed_s=float(record.get("elapsed_s", math.nan)),
        )
    raise SchedulingError(
        "unrecognised archive record: neither a batch job record "
        "(spec/status/result) nor a service outcome record "
        "(kind/request/report)"
    )


def _finite_mean(values: list[float]) -> float:
    finite = [v for v in values if math.isfinite(v)]
    return math.fsum(finite) / len(finite) if finite else math.nan


def summarize_records(
    records: Iterable[dict[str, Any]],
) -> list[SolverSummary]:
    """Per-solver summaries of an archive's records, sorted by name."""
    by_solver: dict[str, list[RecordStats]] = {}
    for record in records:
        stats = record_stats(record)
        by_solver.setdefault(stats.solver, []).append(stats)
    summaries = []
    for solver in sorted(by_solver):
        stats = by_solver[solver]
        ok = [s for s in stats if s.ok]
        summaries.append(
            SolverSummary(
                solver=solver,
                jobs=len(stats),
                errors=len(stats) - len(ok),
                hot_spot_rate=_finite_mean([s.hot_spot_rate for s in ok]),
                mean_headroom_c=_finite_mean([s.headroom_c for s in ok]),
                mean_length_s=_finite_mean([s.length_s for s in ok]),
                mean_elapsed_s=_finite_mean([s.elapsed_s for s in stats]),
            )
        )
    return summaries


def summarize_archives(
    paths: Sequence[str | Path],
    empty_ok: bool = False,
    tolerate_torn_tail: bool = False,
) -> list[SolverSummary]:
    """Summaries over the concatenation of one or more JSONL archives.

    With ``empty_ok`` an archive set holding no records yields ``[]``
    (a freshly booted ``repro serve --archive`` creates the file before
    anything resolves — empty is a state, not a mistake); the default
    raises :class:`~repro.errors.SchedulingError` so library callers
    cannot mistake an empty summary for a summarised fleet.

    ``tolerate_torn_tail`` forgives a half-written *final* record per
    archive (with a warning): summarising the live archive of a running
    ``repro serve`` races its appender, and losing the in-flight record
    is correct — failing the whole report is not.
    """
    records: list[dict[str, Any]] = []
    for path in paths:
        records.extend(
            load_jsonl(path, tolerate_torn_tail=tolerate_torn_tail)
        )
    if not records:
        if empty_ok:
            return []
        raise SchedulingError(
            f"no records found in {', '.join(str(p) for p in paths)}"
        )
    return summarize_records(records)


def render_summary_table(summaries: Sequence[SolverSummary]) -> str:
    """The per-solver summary as an aligned text table."""

    def fmt(value: float, spec: str) -> str:
        return "-" if math.isnan(value) else format(value, spec)

    headers = (
        "solver",
        "jobs",
        "errors",
        "err%",
        "hot-spot%",
        "headroom degC",
        "length s",
        "solve ms",
    )
    rows = [headers]
    for s in summaries:
        rows.append(
            (
                s.solver,
                str(s.jobs),
                str(s.errors),
                f"{s.error_rate * 100:.0f}",
                fmt(s.hot_spot_rate * 100, ".0f"),
                fmt(s.mean_headroom_c, ".2f"),
                fmt(s.mean_length_s, "g"),
                fmt(s.mean_elapsed_s * 1e3, ".1f"),
            )
        )
    widths = [max(len(row[i]) for row in rows) for i in range(len(headers))]
    lines = []
    for index, row in enumerate(rows):
        lines.append(
            "  ".join(
                cell.ljust(widths[i]) if i == 0 else cell.rjust(widths[i])
                for i, cell in enumerate(row)
            )
        )
        if index == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)

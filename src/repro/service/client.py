"""Clients for the scheduling service's JSONL-over-TCP protocol.

:class:`AsyncServiceClient` is the native asyncio client: it pipelines
any number of concurrent submits over one connection, correlates the
responses by frame id, and hands back decoded
:class:`~repro.api.SolveReport` objects (or raw frames, for callers that
only need the wire payload).

:class:`ServiceClient` is the synchronous wrapper for scripts and the
CLI: it runs an event loop on a background thread and exposes blocking
``submit`` / ``submit_many`` / ``stats`` / ``metrics_text`` / ``ping``
calls.

Connection loss is survivable: a client built by :meth:`connect` knows
its address, so after the read loop dies it re-dials on the next call
(pending calls at the moment of loss fail with the typed, retryable
:class:`~repro.errors.ServiceConnectionError` — the solves are
deduplicated by content hash server-side, so resubmitting is safe).
With a :class:`~repro.service.fleet.RetryPolicy` attached, the re-dial
and the resubmission happen transparently, and ``ServiceBusyError``
answers are retried honouring the server's ``retry_after_s`` hint
before exponential backoff.

Answer provenance survives decoding: a report served from the service's
answer cache arrives with ``report.cached`` set (and ``"cached": true``
in the raw frame), so a client can distinguish a memory answer from a
fresh solve.
"""

from __future__ import annotations

import asyncio
import itertools
import threading
import time
from typing import (
    TYPE_CHECKING,
    Any,
    AsyncIterator,
    Callable,
    Iterator,
    Sequence,
)

if TYPE_CHECKING:  # imported lazily: fleet.router imports this module
    from .fleet.retry import RetryPolicy

from ..api.request import ScheduleRequest, SolveReport, report_from_dict
from ..errors import (
    ProtocolError,
    ReproError,
    ServiceBusyError,
    ServiceClosedError,
    ServiceConnectionError,
    ServiceError,
)
from .protocol import (
    DEFAULT_PORT,
    MAX_FRAME_BYTES,
    decode_frame,
    encode_frame,
    fleet_stats_frame,
    metrics_frame,
    ping_frame,
    stats_frame,
    submit_frame,
)

#: Error-frame types raised back as their specific client-side class.
_ERROR_CLASSES = {
    "ServiceBusyError": ServiceBusyError,
    "ServiceClosedError": ServiceClosedError,
    "ServiceConnectionError": ServiceConnectionError,
    "ProtocolError": ProtocolError,
}


def _raise_error_frame(frame: dict[str, Any]) -> None:
    error_type = frame.get("error_type") or "ServiceError"
    message = frame.get("error") or "unknown service error"
    cls = _ERROR_CLASSES.get(error_type, ServiceError)
    if cls is ServiceBusyError:
        # Reconstitute the server's backoff hint so a RetryPolicy can
        # honour it client-side.
        raise ServiceBusyError(message, retry_after_s=frame.get("retry_after_s"))
    if (
        cls is ServiceError
        and error_type != "ServiceError"
        and not message.startswith(f"{error_type}:")
    ):
        # Solver-side failures keep their origin visible (worker
        # outcomes already embed it; don't prefix twice).
        message = f"{error_type}: {message}"
    raise cls(message)


class AsyncServiceClient:
    """Pipelined asyncio client over one service connection."""

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        host: str | None = None,
        port: int | None = None,
        retry_policy: RetryPolicy | None = None,
    ) -> None:
        self._host = host
        self._port = port
        self._retry_policy = retry_policy
        self._write_lock = asyncio.Lock()
        self._reconnect_lock = asyncio.Lock()
        self._pending: dict[str, asyncio.Future] = {}
        #: Watch queues by frame id: push frames land here instead of a
        #: pending future; the terminal frame (or an exception on
        #: connection loss) ends the subscription.
        self._subscriptions: "dict[str, asyncio.Queue[Any]]" = {}
        self._ids = itertools.count(1)
        self._closed = False
        self._attach(reader, writer)

    def _attach(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        self._reader = reader
        self._writer = writer
        self._connection_lost = False
        self._read_task = asyncio.ensure_future(self._read_loop(reader))

    @classmethod
    async def connect(
        cls,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        retry_policy: RetryPolicy | None = None,
    ) -> "AsyncServiceClient":
        """Open a connection to a running ``repro serve`` (or router).

        With a *retry_policy*, refused dials are retried with backoff
        before giving up; the policy stays attached and also governs
        reconnects and transient-error retries on later calls.
        """
        reader, writer = await cls._dial(host, port, retry_policy)
        return cls(
            reader, writer, host=host, port=port, retry_policy=retry_policy
        )

    @staticmethod
    async def _dial(
        host: str, port: int, retry_policy: RetryPolicy | None
    ) -> tuple[asyncio.StreamReader, asyncio.StreamWriter]:
        attempt = 0
        while True:
            attempt += 1
            try:
                return await asyncio.open_connection(
                    host, port, limit=MAX_FRAME_BYTES
                )
            except OSError as exc:
                if retry_policy is None or not retry_policy.should_retry(
                    attempt
                ):
                    raise ServiceConnectionError(
                        f"cannot connect to scheduling service at "
                        f"{host}:{port}: {exc}"
                    ) from exc
                await retry_policy.pause(attempt)

    @property
    def connection_lost(self) -> bool:
        """True when the read loop has died (the next call re-dials)."""
        return self._connection_lost

    async def reconnect(self) -> None:
        """Re-dial after connection loss; re-entrant and idempotent.

        Concurrent callers serialise on a lock; whoever arrives after
        the connection is live again returns immediately.  Only clients
        built by :meth:`connect` know their address — a client wrapped
        around raw streams cannot re-dial.
        """
        if self._closed:
            raise ServiceConnectionError("client is closed")
        if self._host is None or self._port is None:
            raise ServiceConnectionError(
                "client was built from raw streams and cannot reconnect"
            )
        async with self._reconnect_lock:
            if self._closed:
                raise ServiceConnectionError("client is closed")
            if not self._connection_lost:
                return
            self._read_task.cancel()
            try:
                await self._read_task
            except asyncio.CancelledError:
                pass
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass
            reader, writer = await self._dial(
                self._host, self._port, self._retry_policy
            )
            self._attach(reader, writer)

    async def _read_loop(self, reader: asyncio.StreamReader) -> None:
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                if not line.strip():
                    continue
                try:
                    frame = decode_frame(line)
                except ProtocolError:
                    continue  # tolerate garbage; pending ids still time out
                frame_id = frame.get("id")
                frame_type = frame.get("type")
                if frame_type == "progress" or frame_type == "event":
                    # Server push: route to the watch subscription; a
                    # push for an unknown id is dropped (its watcher
                    # already finished or errored out).
                    subscription = self._subscriptions.get(frame_id)
                    if subscription is not None:
                        subscription.put_nowait(frame)
                    continue
                subscription = self._subscriptions.pop(frame_id, None)
                if subscription is not None:
                    # Terminal report/error frame of a watch.
                    subscription.put_nowait(frame)
                    continue
                future = self._pending.pop(frame_id, None)
                if future is not None and not future.done():
                    future.set_result(frame)
        # ValueError: an oversized line (StreamReader converts
        # LimitOverrunError); the stream cannot be resynchronised.
        except (ConnectionResetError, asyncio.CancelledError, OSError, ValueError):
            pass
        finally:
            # Flag first, then fail: _roundtrip re-checks the flag
            # after registering its future, so no future can slip in
            # behind this sweep and hang forever.
            self._connection_lost = True
            self._fail_pending(
                ServiceConnectionError("connection to the service closed")
            )

    def _fail_pending(self, exc: Exception) -> None:
        for future in self._pending.values():
            if not future.done():
                future.set_exception(exc)
        self._pending.clear()
        for subscription in self._subscriptions.values():
            subscription.put_nowait(exc)
        self._subscriptions.clear()

    async def _roundtrip(self, frame: dict[str, Any]) -> dict[str, Any]:
        if self._closed:
            raise ServiceError("client is closed")
        if self._connection_lost:
            raise ServiceConnectionError("connection to the service closed")
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending[frame["id"]] = future
        if self._connection_lost:
            # Lost between the check and the registration: the read
            # loop's sweep may have missed this future — a write to a
            # dead transport can buffer silently, which would leave
            # the caller awaiting forever.
            self._pending.pop(frame["id"], None)
            raise ServiceConnectionError("connection to the service closed")
        async with self._write_lock:
            self._writer.write(encode_frame(frame))
            await self._writer.drain()
        return await future

    async def _request(
        self,
        build: Callable[[str], dict[str, Any]],
        busy_retry: bool = False,
    ) -> dict[str, Any]:
        """One request-response exchange, with reconnect and retries.

        *build* maps a fresh frame id to the request frame (a new id
        per attempt — the failed attempt's id died with its future).
        Connection loss triggers a re-dial; with a retry policy it is
        retried with backoff, and with ``busy_retry`` so are
        ``ServiceBusyError`` answers (honouring ``retry_after_s``).
        """
        attempt = 0
        while True:
            attempt += 1
            try:
                if self._connection_lost and not self._closed:
                    await self.reconnect()
                response = await self._roundtrip(build(f"r{next(self._ids)}"))
            except ServiceConnectionError:
                if (
                    self._closed
                    or self._retry_policy is None
                    or not self._retry_policy.should_retry(attempt)
                ):
                    raise
                await self._retry_policy.pause(attempt)
                continue
            if (
                busy_retry
                and response["type"] == "error"
                and response.get("error_type") == "ServiceBusyError"
                and self._retry_policy is not None
                and self._retry_policy.should_retry(attempt)
            ):
                await self._retry_policy.pause(
                    attempt, retry_after_s=response.get("retry_after_s")
                )
                continue
            return response

    # -- calls -------------------------------------------------------------------------

    async def submit_raw(
        self,
        request: ScheduleRequest,
        *,
        timeout_s: float | None = None,
    ) -> dict[str, Any]:
        """Submit and return the raw response frame — report *or* error.

        Error frames are returned, not raised, so a relay (the fleet
        router) can forward them with full wire fidelity (``retryable``,
        ``retry_after_s``, ``request_hash`` intact).  Connection loss
        still raises :class:`~repro.errors.ServiceConnectionError`
        after the retry policy is exhausted.
        """
        return await self._request(
            lambda frame_id: submit_frame(frame_id, request, timeout_s=timeout_s),
            busy_retry=True,
        )

    async def submit(
        self,
        request: ScheduleRequest,
        *,
        timeout_s: float | None = None,
        decode: bool = True,
    ) -> SolveReport | dict[str, Any]:
        """Submit one request and await its answer.

        Returns the decoded report (schedule revalidated against a
        rebuilt SoC) or, with ``decode=False``, the raw report frame.
        Error frames raise: :class:`~repro.errors.ServiceBusyError` /
        :class:`~repro.errors.ServiceClosedError` /
        :class:`~repro.errors.ProtocolError` for their own kinds,
        :class:`~repro.errors.ServiceConnectionError` for a lost
        connection, :class:`~repro.errors.ServiceError` for solve
        failures.  Resubmitting after a connection error is always
        safe — solves are deduplicated by content hash server-side.
        """
        response = await self.submit_raw(request, timeout_s=timeout_s)
        if response["type"] == "error":
            _raise_error_frame(response)
        if response["type"] != "report":
            raise ProtocolError(
                f"expected a report frame, got {response['type']!r}"
            )
        return report_from_dict(response["report"]) if decode else response

    async def submit_many(
        self,
        requests: Sequence[ScheduleRequest],
        *,
        timeout_s: float | None = None,
        decode: bool = True,
        return_errors: bool = False,
    ) -> list[Any]:
        """Pipeline a whole burst; results in submission order.

        With ``return_errors=True`` failed submissions yield their
        exception object in place of a report instead of raising (so
        one infeasible request does not hide the other answers).
        """
        tasks = [
            asyncio.ensure_future(
                self.submit(request, timeout_s=timeout_s, decode=decode)
            )
            for request in requests
        ]
        results = await asyncio.gather(*tasks, return_exceptions=return_errors)
        return list(results)

    async def stream(
        self,
        requests: Sequence[ScheduleRequest],
        *,
        timeout_s: float | None = None,
        decode: bool = True,
    ) -> AsyncIterator[tuple[int, Any]]:
        """Pipeline a burst and yield ``(index, result)`` as answers land.

        Failures yield the exception object (stream order is completion
        order, so raising would abandon later answers).
        """

        async def _indexed(index: int, request: ScheduleRequest):
            try:
                return index, await self.submit(
                    request, timeout_s=timeout_s, decode=decode
                )
            # ReproError, not just ServiceError: decode=True can raise
            # RequestError (schema drift, provenance mismatch) from
            # report_from_dict, and that too must not abandon the
            # other in-flight answers.
            except ReproError as exc:
                return index, exc

        tasks = [
            asyncio.ensure_future(_indexed(i, request))
            for i, request in enumerate(requests)
        ]
        for completed in asyncio.as_completed(tasks):
            yield await completed

    async def watch(
        self,
        request: ScheduleRequest,
        *,
        timeout_s: float | None = None,
    ) -> AsyncIterator[dict[str, Any]]:
        """Submit with streaming and yield every frame of the watch.

        Yields raw frames in server order: ``progress`` (queued /
        running), ``event`` (the reactive executor's timeline, one
        frame per throttle / pause / reorder / session boundary), and
        finally the ordinary terminal ``report`` or ``error`` frame —
        after which the iterator ends.  Each push frame carries a
        per-watch monotonically increasing ``seq``.

        Connection loss mid-watch raises
        :class:`~repro.errors.ServiceConnectionError`; a watch is never
        auto-retried (re-submitting replays the whole timeline — the
        caller must opt into that).
        """
        if self._closed:
            raise ServiceError("client is closed")
        if self._connection_lost:
            await self.reconnect()
        frame_id = f"w{next(self._ids)}"
        queue: "asyncio.Queue[Any]" = asyncio.Queue()
        self._subscriptions[frame_id] = queue
        if self._connection_lost:
            # Lost between the check and the registration (same race
            # as _roundtrip): the read loop's sweep may have missed
            # this subscription.
            self._subscriptions.pop(frame_id, None)
            raise ServiceConnectionError("connection to the service closed")
        try:
            frame = submit_frame(
                frame_id, request, timeout_s=timeout_s, stream=True
            )
            async with self._write_lock:
                self._writer.write(encode_frame(frame))
                await self._writer.drain()
            while True:
                received = await queue.get()
                if isinstance(received, Exception):
                    raise received
                frame_type = received.get("type")
                if frame_type == "progress" or frame_type == "event":
                    yield received
                    continue
                yield received  # terminal report/error ends the watch
                return
        finally:
            self._subscriptions.pop(frame_id, None)

    async def stats(self) -> dict[str, Any]:
        """The service's current metrics snapshot."""
        response = await self._request(stats_frame)
        if response["type"] == "error":
            _raise_error_frame(response)
        return response["stats"]

    async def fleet_stats(self) -> dict[str, Any]:
        """Fleet-level stats: per-shard health and an aggregate.

        Against a router: every shard's health record and stats plus
        the summed fleet counters.  Against a plain server: the same
        shape as a healthy fleet of one.
        """
        response = await self._request(fleet_stats_frame)
        if response["type"] == "error":
            _raise_error_frame(response)
        return response["fleet"]

    async def metrics_text(self) -> str:
        """The service's telemetry as Prometheus text exposition."""
        response = await self._request(metrics_frame)
        if response["type"] == "error":
            _raise_error_frame(response)
        if response["type"] != "metrics":
            raise ProtocolError(
                f"expected a metrics frame, got {response['type']!r}"
            )
        return response["text"]

    async def ping(self) -> float:
        """Round-trip a ping; returns the latency in seconds."""
        start = time.perf_counter()
        response = await self._request(ping_frame)
        if response["type"] != "pong":
            raise ProtocolError(f"expected pong, got {response['type']!r}")
        return time.perf_counter() - start

    async def close(self) -> None:
        """Close the connection; pending calls fail."""
        if self._closed:
            return
        self._closed = True
        self._read_task.cancel()
        try:
            await self._read_task
        except asyncio.CancelledError:
            pass
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass

    async def __aenter__(self) -> "AsyncServiceClient":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()


class ServiceClient:
    """Blocking client: an event loop on a background thread.

    Usage::

        with ServiceClient(port=7788) as client:
            report = client.submit(ScheduleRequest(soc="alpha15", ...))

    Every call is thread-safe; concurrent submits from several threads
    pipeline over the single connection.  An optional
    :class:`~repro.service.fleet.RetryPolicy` gives every call the
    async client's reconnect/backoff behaviour.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        connect_timeout_s: float = 30.0,
        retry_policy: RetryPolicy | None = None,
    ) -> None:
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever,
            name="repro-service-client",
            daemon=True,
        )
        self._thread.start()
        try:
            self._client: AsyncServiceClient = self._call(
                AsyncServiceClient.connect(
                    host, port, retry_policy=retry_policy
                ),
                timeout=connect_timeout_s,
            )
        except BaseException:
            self._shutdown_loop()
            raise

    def _call(self, coro, timeout: float | None = None):
        future = asyncio.run_coroutine_threadsafe(coro, self._loop)
        return future.result(timeout)

    def _shutdown_loop(self) -> None:
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join()
        self._loop.close()

    def submit(
        self,
        request: ScheduleRequest,
        *,
        timeout_s: float | None = None,
        decode: bool = True,
    ) -> SolveReport | dict[str, Any]:
        """Blocking :meth:`AsyncServiceClient.submit`."""
        return self._call(
            self._client.submit(request, timeout_s=timeout_s, decode=decode)
        )

    def submit_many(
        self,
        requests: Sequence[ScheduleRequest],
        *,
        timeout_s: float | None = None,
        decode: bool = True,
        return_errors: bool = False,
    ) -> list[Any]:
        """Blocking :meth:`AsyncServiceClient.submit_many`."""
        return self._call(
            self._client.submit_many(
                requests,
                timeout_s=timeout_s,
                decode=decode,
                return_errors=return_errors,
            )
        )

    def watch(
        self,
        request: ScheduleRequest,
        *,
        timeout_s: float | None = None,
    ) -> Iterator[dict[str, Any]]:
        """Blocking :meth:`AsyncServiceClient.watch`: yields raw frames.

        Pumps the async generator one frame at a time over the
        background loop, so frames arrive as the server pushes them —
        not batched at the end.
        """
        watcher = self._client.watch(request, timeout_s=timeout_s)
        while True:
            try:
                frame = self._call(watcher.__anext__())
            except StopAsyncIteration:
                return
            yield frame

    def stats(self) -> dict[str, Any]:
        """Blocking :meth:`AsyncServiceClient.stats`."""
        return self._call(self._client.stats())

    def fleet_stats(self) -> dict[str, Any]:
        """Blocking :meth:`AsyncServiceClient.fleet_stats`."""
        return self._call(self._client.fleet_stats())

    def metrics_text(self) -> str:
        """Blocking :meth:`AsyncServiceClient.metrics_text`."""
        return self._call(self._client.metrics_text())

    def ping(self) -> float:
        """Blocking :meth:`AsyncServiceClient.ping`."""
        return self._call(self._client.ping())

    def close(self) -> None:
        """Close the connection and stop the background loop."""
        try:
            self._call(self._client.close(), timeout=10.0)
        finally:
            self._shutdown_loop()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

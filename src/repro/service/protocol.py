"""JSONL wire protocol of the scheduling service.

One frame per line: a single JSON object, UTF-8 encoded, terminated by
``\\n`` — the same newline-delimited shape as the batch engine's JSONL
archives, so the codecs (and greppability) carry over to the wire.

Client to server::

    {"type": "submit",      "id": "c1", "request": {...}, "timeout_s": 30,
     "stream": true}
    {"type": "stats",       "id": "c2"}
    {"type": "ping",        "id": "c3"}
    {"type": "metrics",     "id": "c4"}
    {"type": "fleet_stats", "id": "c5"}

Server to client (correlated by the client-chosen ``id``; responses to
concurrent submits arrive in *completion* order, not submission order)::

    {"type": "report",      "id": "c1", "request_hash": "...", "report": {...}}
    {"type": "error",       "id": "c1", "error_type": "...", "error": "...",
     "retryable": true, "retry_after_s": 0.5}
    {"type": "stats",       "id": "c2", "stats": {...}}
    {"type": "pong",        "id": "c3"}
    {"type": "metrics",     "id": "c4", "text": "# HELP repro_submitted..."}
    {"type": "fleet_stats", "id": "c5", "fleet": {"shards": {...}, ...}}

Server push (only on a ``"stream": true`` submit; zero or more of these
precede the terminal report/error frame, all carrying the submit's
``id`` plus a per-watch monotonically increasing ``seq``)::

    {"type": "progress", "id": "c1", "seq": 0, "stage": "queued",
     "request_hash": "..."}
    {"type": "event",    "id": "c1", "seq": 2, "event": {"kind":
     "throttled", "time_s": 0.12, "session": 3, "cores": ["B5"],
     "guard_state": "elevated", "max_temperature_c": 51.6,
     "hottest_block": "B5", ...}}

Progress frames mark the request lifecycle (``queued`` on admission,
``running`` once the solve is done and closed-loop execution starts);
event frames replay the reactive executor's timeline live — queued /
running / throttled / paused / reordered / session_done / done per
session, each with the hottest block, its temperature, and the guard
state at that instant.  A watch always ends with the ordinary report
(or error) frame, so non-streaming semantics are a strict subset.

Error frames optionally carry ``retryable`` (mirror of the raising
error class's flag: retry with backoff, or accept the answer as final)
and, on busy errors, ``retry_after_s`` — the server's own backoff hint.
The fleet_stats frame is answered by a ``repro route`` router with
per-shard health/stats and a fleet aggregate; a plain ``repro serve``
answers it too, as a healthy fleet of one.

Frames embed requests and reports in exactly the dict forms of
:func:`repro.api.request_to_dict` / :func:`repro.api.report_to_dict`,
so anything that can read a batch archive can read the wire.  A report
answered from the service's answer cache carries ``"cached": true``
inside its report dict — same frame shape, explicit provenance.

The stats frame's payload is
:meth:`repro.service.service.ServiceMetrics.to_dict`: queue/worker
gauges (``queue_depth``, ``in_flight``, ``current_workers`` inside the
``min_workers``/``workers`` band), submission counters (``submitted``,
``answer_hits``, ``deduped``, ``rejected``, ``shed``), solve counters,
and the nested ``cache`` (thermal models) and ``answer_cache``
(hits/misses/evictions/expirations) statistics, plus a nested
``latency`` mapping of streaming-histogram snapshots
(p50/p95/p99/count per phase).  The metrics frame's ``text`` payload is
the same telemetry rendered as Prometheus text exposition
(:func:`repro.service.service.render_metrics_text`), ready for a
scraper or ``repro metrics``.
"""

from __future__ import annotations

import json
from typing import Any, Mapping

from ..api.request import (
    ScheduleRequest,
    SolveReport,
    report_to_dict,
    request_from_dict,
    request_to_dict,
)
from ..errors import ProtocolError, ReproError

#: Default TCP port of ``repro serve`` (unassigned range, no IANA clash).
DEFAULT_PORT = 7788

#: Per-frame size cap, applied as the asyncio stream ``limit``.  A report
#: embeds a full annotated schedule; even hundred-core systems stay far
#: below this, so anything larger is a protocol violation, not data.
MAX_FRAME_BYTES = 16 * 1024 * 1024

#: Default TCP port of ``repro route`` (one above the shard default).
DEFAULT_ROUTER_PORT = 7789

#: Every frame type either side may send.
FRAME_TYPES = frozenset(
    {
        "submit",
        "report",
        "error",
        "stats",
        "ping",
        "pong",
        "metrics",
        "fleet_stats",
        "progress",
        "event",
    }
)

#: Frame types a client may send (the server/router dispatch tables must
#: cover exactly this set — enforced by the ``frame-schema`` check rule).
CLIENT_FRAME_TYPES = frozenset(
    {"submit", "stats", "ping", "metrics", "fleet_stats"}
)

#: Frame types a server or router may answer with.
SERVER_FRAME_TYPES = frozenset(
    {
        "report",
        "error",
        "stats",
        "pong",
        "metrics",
        "fleet_stats",
        "progress",
        "event",
    }
)

#: Server-push frame types: unsolicited mid-stream frames a watching
#: client must route to its subscription instead of a pending future.
#: (Also enforced by the ``frame-schema`` rule: each must be registered
#: above, have a builder, and be handled by both client dispatch paths.)
PUSH_FRAME_TYPES = frozenset({"progress", "event"})


def encode_frame(frame: Mapping[str, Any]) -> bytes:
    """Serialise one frame to its newline-terminated wire bytes."""
    return json.dumps(dict(frame), separators=(",", ":")).encode() + b"\n"


def decode_frame(line: bytes | str) -> dict[str, Any]:
    """Parse one wire line into a frame dict.

    Raises
    ------
    ProtocolError
        On malformed JSON, a non-object payload, or an unknown
        ``type`` — the server answers these with an error frame instead
        of dropping the connection, so one bad client line cannot kill
        a pipelined session.
    """
    if isinstance(line, bytes):
        try:
            line = line.decode()
        except UnicodeDecodeError as exc:
            raise ProtocolError(f"frame is not valid UTF-8: {exc}") from exc
    try:
        frame = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"frame is not valid JSON: {exc}") from exc
    if not isinstance(frame, dict):
        raise ProtocolError(
            f"frame must be a JSON object, got {type(frame).__name__}"
        )
    frame_type = frame.get("type")
    if frame_type not in FRAME_TYPES:
        raise ProtocolError(
            f"unknown frame type {frame_type!r}; expected one of "
            f"{', '.join(sorted(FRAME_TYPES))}"
        )
    return frame


# -- client-side builders -------------------------------------------------------------


def submit_frame(
    frame_id: str,
    request: ScheduleRequest,
    timeout_s: float | None = None,
    *,
    stream: bool = False,
) -> dict[str, Any]:
    """A submit frame carrying *request* under correlation id *frame_id*.

    With ``stream=True`` the server pushes ``progress``/``event``
    frames for this id before the terminal report/error frame.
    """
    frame: dict[str, Any] = {
        "type": "submit",
        "id": frame_id,
        "request": request_to_dict(request),
    }
    if timeout_s is not None:
        frame["timeout_s"] = timeout_s
    if stream:
        frame["stream"] = True
    return frame


def stats_frame(frame_id: str) -> dict[str, Any]:
    """A stats-query frame."""
    return {"type": "stats", "id": frame_id}


def ping_frame(frame_id: str) -> dict[str, Any]:
    """A liveness-probe frame."""
    return {"type": "ping", "id": frame_id}


def metrics_frame(frame_id: str) -> dict[str, Any]:
    """A Prometheus-text metrics-scrape frame."""
    return {"type": "metrics", "id": frame_id}


def fleet_stats_frame(frame_id: str) -> dict[str, Any]:
    """A fleet-level stats query.

    Answered by a router with per-shard health and stats plus an
    aggregate; a plain server answers as a healthy fleet of one, so
    clients can ask either endpoint the same question.
    """
    return {"type": "fleet_stats", "id": frame_id}


# -- server-side builders -------------------------------------------------------------


def report_frame(frame_id: str | None, report: SolveReport) -> dict[str, Any]:
    """A successful-answer frame embedding the report's dict form."""
    return {
        "type": "report",
        "id": frame_id,
        "request_hash": report.request_hash,
        "report": report_to_dict(report),
    }


def error_frame(
    frame_id: str | None,
    error: str,
    error_type: str = "ServiceError",
    request_hash: str | None = None,
    retryable: bool | None = None,
    retry_after_s: float | None = None,
) -> dict[str, Any]:
    """A failure frame (solve error, protocol error, or rejection).

    ``retryable`` mirrors the raising error class's flag so clients can
    classify without a class table; ``retry_after_s`` is the server's
    backoff hint on busy errors (queue depth x recent solve latency).
    """
    frame: dict[str, Any] = {
        "type": "error",
        "id": frame_id,
        "error_type": error_type,
        "error": error,
    }
    if request_hash is not None:
        frame["request_hash"] = request_hash
    if retryable is not None:
        frame["retryable"] = retryable
    if retry_after_s is not None:
        frame["retry_after_s"] = retry_after_s
    return frame


def progress_frame(
    frame_id: str | None,
    stage: str,
    *,
    seq: int,
    request_hash: str | None = None,
) -> dict[str, Any]:
    """A lifecycle push frame: the watched request changed stage."""
    frame: dict[str, Any] = {
        "type": "progress",
        "id": frame_id,
        "seq": seq,
        "stage": stage,
    }
    if request_hash is not None:
        frame["request_hash"] = request_hash
    return frame


def event_frame(
    frame_id: str | None,
    event: Mapping[str, Any],
    *,
    seq: int,
) -> dict[str, Any]:
    """A reactive-execution push frame embedding one timeline event.

    The payload is :meth:`repro.reactive.ReactiveEvent.to_dict` —
    kind, simulated time, session, cores, guard state, and the hottest
    block with its temperature.
    """
    return {
        "type": "event",
        "id": frame_id,
        "seq": seq,
        "event": dict(event),
    }


def parse_submit_frame(
    frame: Mapping[str, Any],
) -> tuple[ScheduleRequest, float | None, bool]:
    """Extract request, optional timeout, and stream flag from a submit.

    Raises
    ------
    ProtocolError
        On a missing/invalid request payload or a bad timeout — the
        embedded request errors (unknown SoC, conflicting limits, ...)
        surface as the library's own :class:`~repro.errors.RequestError`
        wrapped in a ProtocolError message so the server can answer with
        a precise error frame.
    """
    payload = frame.get("request")
    if not isinstance(payload, dict):
        raise ProtocolError("submit frame carries no request object")
    try:
        request = request_from_dict(payload)
    except ReproError as exc:
        raise ProtocolError(f"bad request in submit frame: {exc}") from exc
    except (TypeError, KeyError) as exc:
        raise ProtocolError(
            f"malformed request in submit frame: {exc!r}"
        ) from exc
    timeout_s = frame.get("timeout_s")
    if timeout_s is not None:
        try:
            timeout_s = float(timeout_s)
        except (TypeError, ValueError) as exc:
            raise ProtocolError(
                f"timeout_s must be a number, got {timeout_s!r}"
            ) from exc
        if timeout_s <= 0.0:
            raise ProtocolError(
                f"timeout_s must be positive, got {timeout_s!r}"
            )
    stream = frame.get("stream", False)
    if not isinstance(stream, bool):
        raise ProtocolError(
            f"stream must be a boolean, got {stream!r}"
        )
    return request, timeout_s, stream

"""The long-lived asyncio scheduling service.

:class:`ScheduleService` is the queueing heart of ``repro serve``: it
accepts :class:`~repro.api.ScheduleRequest`\\ s on a bounded job queue,
dispatches them to a worker pool built from the batch engine's execution
backends, and resolves each submission's awaitable with a
:class:`~repro.service.execution.SolveOutcome`.

Design points:

* **Bounded queue, explicit backpressure** — :meth:`ScheduleService.submit`
  awaits queue space (a TCP handler that awaits it stops reading its
  socket, pushing the backpressure all the way to the client), while
  :meth:`ScheduleService.submit_nowait` raises
  :class:`~repro.errors.ServiceBusyError` for callers that would rather
  shed load than wait.  An optional ``shed_watermark`` turns *both*
  paths into load-shedders past a queue-depth high-water mark.
* **Answer cache** — resolved answers are kept in a bounded,
  TTL-expiring :class:`~repro.service.answer_cache.AnswerCache` keyed
  by the same content hash as everything else; a hit resolves the
  submission immediately (report flagged ``cached``) without touching
  the queue or a worker, and the cache can warm-start from a
  :class:`~repro.service.archive.ReportArchive` at boot.
* **In-flight deduplication** — submissions are keyed by the request's
  stable :meth:`~repro.api.ScheduleRequest.content_hash`; while a solve
  for a given hash is queued or running, every identical submission
  attaches to the same :class:`ServiceJob` and one worker answers them
  all.  (Waiters share the job's outcome — including its timeout, which
  is fixed by the first submitter.)
* **Adaptive worker pool** — admissions to the executor are gated by an
  :class:`~repro.service.pool.AdaptiveWorkerPool` that scales its
  target between ``min_workers`` and ``max_workers`` with queue
  pressure (one step per observation, idle hysteresis on the way down).
* **Shared thermal models** — thread workers solve against the
  service's :class:`~repro.engine.cache.ThermalModelCache`; process
  workers use the same per-process cache as the batch runner, so a
  service interleaved with batches keeps its factorisations warm.
* **Graceful drain** — :meth:`ScheduleService.stop` (default
  ``drain=True``) stops accepting, lets the queue and every in-flight
  solve finish, resolves all futures, then joins the executor.
"""

from __future__ import annotations

import asyncio
import dataclasses
import time
from dataclasses import dataclass
from functools import partial
from pathlib import Path
from typing import Any, Mapping

from ..api.request import ScheduleRequest, SolveReport
from ..engine.backends import ExecutionBackend, create_backend
from ..engine.cache import CacheStats, ThermalModelCache, resolve_cache
from ..errors import ServiceBusyError, ServiceClosedError, ServiceError
from ..obs.histogram import HistogramRegistry
from ..obs.log import JsonLogger
from ..obs.prometheus import (
    counter_family,
    gauge_family,
    info_family,
    render_families,
    summary_family,
)
from .answer_cache import AnswerCache, AnswerCacheStats, warm_cache_from_archive
from .archive import ReportArchive
from .execution import (
    SolveOutcome,
    error_outcome,
    process_solve,
    process_solve_batch,
    process_solve_batch_uncached,
    process_solve_uncached,
    solve_request_outcome,
    solve_requests_batch,
)
from .pool import AdaptiveWorkerPool
from ..reactive import (
    GuardConfig,
    ReactiveConfig,
    ReactiveEvent,
    ReactiveRunReport,
    run_schedule_result,
)

#: Latency histogram families the service records (seconds):
#: ``queue_wait`` (submit to worker dispatch — slot acquisition
#: included, since a job only leaves the queue once a slot is held),
#: ``solve`` (wall time inside the worker), ``e2e`` (submit to answer —
#: answer-cache hits included, which is what makes its distribution
#: bimodal), ``answer_hit`` (cache-lookup latency of hits) and
#: ``archive_append`` (background archive write).
LATENCY_FAMILIES = ("queue_wait", "solve", "e2e", "answer_hit", "archive_append")

#: Per-state dwell-time histogram families (seconds spent in each
#: thermal-guard state, one observation per state per reactive run).
#: They live in the same registry as the latency families, so they ride
#: the stats frame's ``latency`` mapping and the Prometheus summaries
#: without a second pipeline.
DWELL_FAMILIES = ("dwell_normal", "dwell_elevated", "dwell_critical")

#: Size-distribution histogram families (dimensionless counts, not
#: seconds): ``batch_size`` records the number of jobs in each
#: worker-pool dispatch while coalescing is enabled — size-1 dispatches
#: included, so the distribution shows how often coalescing actually
#: engages, not just how big its wins are.
BATCH_FAMILIES = ("batch_size",)


@dataclass(frozen=True)
class MetricField:
    """One scalar of the stats frame: name, Prometheus kind, prose.

    The single source of truth behind :meth:`ServiceMetrics.to_dict`,
    :meth:`ServiceMetrics.describe` and the Prometheus rendering —
    adding a counter here adds it to all three, so they cannot drift.

    Attributes
    ----------
    name:
        Attribute name on :class:`ServiceMetrics` (and stats-frame key).
    kind:
        ``"counter"`` or ``"gauge"`` (Prometheus semantics).
    group:
        Describe-line grouping: ``"config"`` fields appear in the
        headline, ``"traffic"``/``"solves"`` fields in their own lines,
        ``"rate"`` fields in the throughput line.
    label:
        Human phrasing used by :meth:`ServiceMetrics.describe`.
    help:
        Prometheus ``# HELP`` text.
    """

    name: str
    kind: str
    group: str
    label: str
    help: str


#: Every scalar of the stats frame, in wire order.
METRIC_FIELDS: tuple[MetricField, ...] = (
    MetricField("workers", "gauge", "config", "workers max",
                "Worker-pool maximum."),
    MetricField("min_workers", "gauge", "config", "workers min",
                "Adaptive worker-pool floor."),
    MetricField("current_workers", "gauge", "config", "current workers",
                "Current adaptive-pool admission target."),
    MetricField("scale_ups", "counter", "solves", "pool scale-ups",
                "One-step pool scale-up decisions."),
    MetricField("scale_downs", "counter", "solves", "pool scale-downs",
                "One-step pool scale-down decisions."),
    MetricField("queue_capacity", "gauge", "config", "queue capacity",
                "Job-queue bound (the backpressure threshold)."),
    MetricField("queue_depth", "gauge", "config", "queue depth",
                "Jobs waiting for a worker slot right now."),
    MetricField("in_flight", "gauge", "config", "in flight",
                "Jobs currently occupying a worker."),
    MetricField("submitted", "counter", "traffic", "submitted",
                "Submissions accepted (dedup and answer hits included)."),
    MetricField("answer_hits", "counter", "traffic", "answer-cache hits",
                "Submissions answered from the answer cache."),
    MetricField("deduped", "counter", "traffic", "deduped",
                "Submissions attached to an identical in-flight solve."),
    MetricField("completed", "counter", "traffic", "ok",
                "Jobs resolved with a report."),
    MetricField("errors", "counter", "traffic", "errors",
                "Jobs resolved with an error outcome."),
    MetricField("timeouts", "counter", "traffic", "timeouts",
                "Jobs that exceeded their solve timeout."),
    MetricField("rejected", "counter", "traffic", "rejected",
                "Submissions refused with ServiceBusyError."),
    MetricField("shed", "counter", "traffic", "shed",
                "Rejections caused by the shed watermark."),
    MetricField("solves_started", "counter", "solves", "solves started",
                "Worker-pool executions dispatched."),
    MetricField("solves_completed", "counter", "solves", "solves completed",
                "Worker-pool executions finished (zombies included)."),
    MetricField("cache_hits", "counter", "solves", "model cache hits",
                "Solves whose thermal model came out of a cache."),
    MetricField("coalesced_batches", "counter", "solves", "coalesced batches",
                "Worker-pool dispatches that solved a coalesced group."),
    MetricField("coalesced_solves", "counter", "solves", "coalesced solves",
                "Jobs answered as members of a coalesced group."),
    MetricField("reactive_runs", "counter", "reactive", "reactive runs",
                "Closed-loop reactive executions streamed to watchers."),
    MetricField("guard_transitions", "counter", "reactive",
                "guard transitions",
                "Thermal-guard state transitions across reactive runs."),
    MetricField("reactive_throttles", "counter", "reactive", "throttles",
                "Throttle engagements forced by the thermal guard."),
    MetricField("reactive_pauses", "counter", "reactive", "pauses",
                "Cooling pauses forced by the thermal guard."),
    MetricField("uptime_s", "gauge", "rate", "uptime s",
                "Seconds since the service started."),
    MetricField("requests_per_s", "gauge", "rate", "req/s",
                "Answered submissions per second of uptime."),
)


def _format_quantile_ms(value: "float | None") -> str:
    return "-" if value is None else f"{value * 1e3:.2f} ms"


class ServiceJob:
    """One queued or running solve, shared by all of its submitters.

    Attributes
    ----------
    request:
        The deduplicated request being solved.
    key:
        Its content hash (the dedup key).
    timeout_s:
        Effective solve timeout (``None`` = unbounded), fixed by the
        first submitter.
    waiters:
        Submissions that dedup-attached to this job after the first —
        the count of *other* clients whose answers die with it.
    queue_wait_s:
        Seconds between submission and worker dispatch (``None`` until
        the job leaves the queue).
    streaming:
        True once any submitter asked for push events
        (``submit(..., stream=True)``); the service then runs the
        closed-loop reactive phase after the solve resolves.
    streams:
        Subscriber queues (see :meth:`subscribe`); every reactive event
        is broadcast to all of them, then a ``None`` sentinel.
    """

    __slots__ = (
        "request",
        "key",
        "timeout_s",
        "future",
        "submitted_at",
        "waiters",
        "queue_wait_s",
        "streaming",
        "streams",
        "reactive_task",
    )

    def __init__(
        self,
        request: ScheduleRequest,
        key: str,
        timeout_s: float | None,
        future: "asyncio.Future[SolveOutcome]",
    ) -> None:
        self.request = request
        self.key = key
        self.timeout_s = timeout_s
        self.future = future
        self.submitted_at = time.perf_counter()
        self.waiters = 0
        self.queue_wait_s: float | None = None
        self.streaming = False
        self.streams: "list[asyncio.Queue[dict[str, Any] | None]]" = []
        self.reactive_task: "asyncio.Task[None] | None" = None

    def subscribe(self) -> "asyncio.Queue[dict[str, Any] | None]":
        """A fresh event queue receiving this job's reactive timeline.

        Subscribe on the event loop right after a streaming submit
        returns (before any further ``await``) and no event can be
        missed.  The queue ends with a ``None`` sentinel.
        """
        queue: "asyncio.Queue[dict[str, Any] | None]" = asyncio.Queue()
        self.streams.append(queue)
        return queue

    @property
    def done(self) -> bool:
        """True once the job's outcome is resolved."""
        return self.future.done()

    async def outcome(self) -> SolveOutcome:
        """Await the job's terminal record (never raises on solve errors).

        The future is shielded: cancelling one waiter does not cancel
        the shared solve the other submitters are still waiting on.
        """
        return await asyncio.shield(self.future)

    async def report(self) -> SolveReport:
        """Await the report; solve failures raise :class:`ServiceError`."""
        outcome = await self.outcome()
        if not outcome.ok:
            raise ServiceError(outcome.error)
        assert outcome.report is not None
        return outcome.report


@dataclass(frozen=True)
class ServiceMetrics:
    """Point-in-time operational snapshot of a :class:`ScheduleService`.

    Attributes
    ----------
    backend, workers, queue_capacity:
        Static configuration (``workers`` is the pool *maximum*).
    min_workers, current_workers:
        Adaptive-pool band floor and current admission target
        (``current_workers == workers`` for a fixed-size pool).
    scale_ups, scale_downs:
        One-step pool scaling decisions taken so far.
    queue_depth:
        Jobs waiting for a worker slot right now.
    in_flight:
        Jobs currently occupying a worker.
    submitted:
        Total submissions accepted (dedup-attached and answer-cache
        hits included).
    answer_hits:
        Submissions answered directly from the answer cache (no queue,
        no worker, report flagged ``cached``).
    deduped:
        Submissions that attached to an already in-flight identical
        request instead of triggering a solve.
    completed, errors, timeouts:
        Jobs resolved ok / with an error outcome / of which timeouts.
    rejected:
        Submissions refused with :class:`~repro.errors.ServiceBusyError`
        (``submit_nowait`` on a full queue, either path past the shed
        watermark, or dedup waiters whose originating submission was
        cancelled while the queue was full).
    shed:
        The subset of ``rejected`` caused by the shed watermark.
    solves_started, solves_completed:
        Worker-pool executions — ``submitted - deduped - answer_hits``
        submissions each start exactly one solve, which is how dedup
        and the answer cache are asserted.
    cache_hits:
        Solves whose thermal model came out of a cache.
    coalesced_batches, coalesced_solves:
        Worker-pool dispatches that solved a coalesced group of two or
        more jobs, and the jobs answered that way.  Both stay zero with
        coalescing disabled (``max_batch=1``), which is what makes the
        baseline comparable.
    uptime_s, requests_per_s:
        Service age and answered-submissions throughput over it.
        Cache hits and dedup-attached submissions count — every one is
        an answered request (an attached waiter's answer is its shared
        job's, so the gauge runs at most ``in_flight`` ahead of the
        futures actually resolving).
    cache:
        Shared model-cache statistics (``None`` for process workers,
        whose per-process caches are visible only via ``cache_hits``).
    answer_cache:
        Answer-cache statistics (``None`` when the cache is disabled).
    latency:
        Per-family latency histogram snapshots (count/sum/min/max/mean
        plus p50/p95/p99; see :data:`LATENCY_FAMILIES`), keyed under
        ``"latency"`` in the stats frame.  ``None`` when the service
        runs with ``observability=False``.
    """

    backend: str
    workers: int
    queue_capacity: int
    queue_depth: int
    in_flight: int
    submitted: int
    deduped: int
    completed: int
    errors: int
    timeouts: int
    rejected: int
    solves_started: int
    solves_completed: int
    cache_hits: int
    uptime_s: float
    requests_per_s: float
    cache: CacheStats | None = None
    min_workers: int = 0
    current_workers: int = 0
    scale_ups: int = 0
    scale_downs: int = 0
    shed: int = 0
    answer_hits: int = 0
    answer_cache: AnswerCacheStats | None = None
    latency: Mapping[str, Mapping[str, Any]] | None = None
    reactive_runs: int = 0
    guard_transitions: int = 0
    reactive_throttles: int = 0
    reactive_pauses: int = 0
    coalesced_batches: int = 0
    coalesced_solves: int = 0

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready form (the stats wire frame's payload).

        Scalar keys come straight from :data:`METRIC_FIELDS`, so the
        wire frame, :meth:`describe` and the Prometheus exposition all
        report the same field set by construction.
        """
        data: dict[str, Any] = {"backend": self.backend}
        for metric in METRIC_FIELDS:
            data[metric.name] = getattr(self, metric.name)
        if self.cache is not None:
            data["cache"] = {
                "hits": self.cache.hits,
                "misses": self.cache.misses,
                "entries": self.cache.entries,
                "evictions": self.cache.evictions,
            }
        if self.answer_cache is not None:
            data["answer_cache"] = self.answer_cache.to_dict()
        if self.latency is not None:
            data["latency"] = {
                name: dict(snapshot)
                for name, snapshot in self.latency.items()
            }
        return data

    @property
    def dedup_rate(self) -> float:
        """Fraction of submissions answered by an in-flight solve."""
        return self.deduped / self.submitted if self.submitted else 0.0

    @property
    def answer_hit_rate(self) -> float:
        """Fraction of submissions answered from the answer cache."""
        return self.answer_hits / self.submitted if self.submitted else 0.0

    def describe(self) -> str:
        """Multi-line human-readable snapshot.

        The counter lines are generated from :data:`METRIC_FIELDS`
        (one ``value label`` pair per field, grouped), so a counter
        added to the stats frame shows up here without a second edit.
        """
        if self.min_workers and self.min_workers != self.workers:
            workers = (
                f"{self.current_workers} workers "
                f"[{self.min_workers}..{self.workers}]"
            )
        else:
            workers = f"{self.workers} workers"
        lines = [
            f"schedule service on backend {self.backend!r} "
            f"({workers}, queue {self.queue_depth}/"
            f"{self.queue_capacity}, {self.in_flight} in flight)",
        ]
        for group in ("traffic", "solves", "reactive"):
            pairs = ", ".join(
                f"{getattr(self, metric.name)} {metric.label}"
                for metric in METRIC_FIELDS
                if metric.group == group
            )
            lines.append(f"  {pairs}")
        lines.append(
            f"  {self.requests_per_s:.1f} req/s over {self.uptime_s:.1f} s"
        )
        if self.latency:
            pairs = ", ".join(
                f"{name} p50 {_format_quantile_ms(snapshot.get('p50'))} / "
                f"p95 {_format_quantile_ms(snapshot.get('p95'))} "
                f"({snapshot.get('count', 0)} samples)"
                for name, snapshot in self.latency.items()
                # Batch widths are job counts, not durations: rendered
                # on their own line instead of through the ms formatter.
                if snapshot.get("count") and name not in BATCH_FAMILIES
            )
            if pairs:
                lines.append(f"  latency: {pairs}")
            batch = self.latency.get("batch_size") or {}
            if batch.get("count"):
                lines.append(
                    f"  batching: size p50 {batch.get('p50', 0.0):g} / "
                    f"max {batch.get('max', 0.0):g} jobs over "
                    f"{batch['count']} group dispatches"
                )
        if self.answer_cache is not None:
            lines.append(f"  {self.answer_cache.describe()}")
        if self.cache is not None:
            lines.append(f"  {self.cache.describe()}")
        return "\n".join(lines)


def render_metrics_text(metrics: ServiceMetrics) -> str:
    """Prometheus text exposition of one metrics snapshot.

    Scalars render from :data:`METRIC_FIELDS` (counters as
    ``repro_<name>_total``, gauges as ``repro_<name>``), the nested
    cache stats as their own families, and each latency snapshot as a
    summary (``repro_<family>_seconds`` with p50/p95/p99 quantile
    samples plus ``_sum``/``_count``).
    """
    families = [
        info_family(
            "repro_service", "Service configuration.",
            {"backend": metrics.backend},
        )
    ]
    for metric in METRIC_FIELDS:
        value = float(getattr(metrics, metric.name))
        name = f"repro_{metric.name}"
        if metric.kind == "counter":
            families.append(counter_family(name, metric.help, value))
        else:
            families.append(gauge_family(name, metric.help, value))
    if metrics.cache is not None:
        cache = metrics.cache
        families.extend(
            (
                counter_family(
                    "repro_model_cache_hits",
                    "Thermal models served from the shared cache.",
                    cache.hits,
                ),
                counter_family(
                    "repro_model_cache_misses",
                    "Thermal models built fresh.",
                    cache.misses,
                ),
                gauge_family(
                    "repro_model_cache_entries",
                    "Thermal models currently cached.",
                    cache.entries,
                ),
                counter_family(
                    "repro_model_cache_evictions",
                    "Thermal models evicted by the cache bound.",
                    cache.evictions,
                ),
            )
        )
    if metrics.answer_cache is not None:
        answers = metrics.answer_cache.to_dict()
        for key, value in answers.items():
            name = f"repro_answer_cache_{key}"
            help_text = f"Answer-cache {key.replace('_', ' ')}."
            if key == "entries":
                families.append(gauge_family(name, help_text, value))
            else:
                families.append(counter_family(name, help_text, value))
    if metrics.latency is not None:
        for family_name, snapshot in metrics.latency.items():
            if family_name in BATCH_FAMILIES:
                # Dimensionless: jobs per dispatch, so no ``_seconds``
                # suffix — a scraper must not average it into latency.
                families.append(
                    summary_family(
                        f"repro_{family_name}",
                        "Jobs per worker-pool dispatch while request "
                        "coalescing is enabled.",
                        snapshot,
                    )
                )
                continue
            if family_name.startswith("dwell_"):
                state = family_name[len("dwell_"):]
                help_text = (
                    f"Thermal-guard {state}-state dwell time per "
                    f"reactive run, in seconds."
                )
            else:
                help_text = (
                    f"Request {family_name.replace('_', ' ')} latency "
                    f"in seconds."
                )
            families.append(
                summary_family(
                    f"repro_{family_name}_seconds", help_text, snapshot
                )
            )
    return render_families(families)


class ScheduleService:
    """Async scheduling service: bounded queue in, worker pool out.

    Parameters
    ----------
    backend:
        Engine backend name (``"thread"``, ``"process"``, ``"serial"``)
        or instance; its :meth:`~repro.engine.backends.ExecutionBackend.create_executor`
        provides the worker pool.
    max_workers:
        Worker-pool maximum (ignored when *backend* is an instance).
    min_workers:
        Adaptive-pool floor; defaults to the maximum (fixed-size pool,
        the pre-adaptive behaviour).  With ``min_workers < max``, the
        admission target scales with queue pressure.
    scale_down_idle_s:
        Continuous quiet time before the pool gives back one worker.
    worker_pool:
        Explicit :class:`~repro.service.pool.AdaptiveWorkerPool`
        (overrides the two knobs above; for tests with injected
        clocks).
    shed_watermark:
        Queue-depth high-water mark past which *both* submit paths
        shed load with :class:`~repro.errors.ServiceBusyError` instead
        of queueing (``None`` = never shed; await-backpressure only).
    cache:
        Thermal-model cache shared by thread/serial workers; pass an
        existing one to share warm models with a
        :class:`~repro.api.Workbench` in the same process.
    use_cache:
        Disable model caching entirely (process workers then skip their
        per-process caches too).
    queue_size:
        Bound of the job queue — the backpressure threshold.
    default_timeout_s:
        Per-solve timeout applied when a submission names none
        (``None`` = unbounded).
    archive:
        A :class:`~repro.service.archive.ReportArchive` (or path) every
        resolved outcome is appended to.
    answer_cache:
        Explicit :class:`~repro.service.answer_cache.AnswerCache`
        (overrides the two knobs below; for tests with injected
        clocks, or to share one cache across services).
    answer_cache_size:
        LRU bound of the default answer cache; ``0`` disables answer
        caching entirely.
    answer_ttl_s:
        TTL of the default answer cache (``None`` = never expires).
    warm_from:
        Service-archive JSONL path whose ``ok`` records pre-populate
        the answer cache at :meth:`start`.
    logger:
        A :class:`~repro.obs.log.JsonLogger` receiving the structured
        request-lifecycle events (admitted / deduped / shed /
        cache-hit / completed / timed-out); ``None`` disables event
        logging.
    slow_request_ms:
        End-to-end latency threshold above which a completed request
        additionally logs a ``slow_request`` event with its full phase
        timings.  Implies a default stderr logger when none is given.
    histograms:
        Explicit :class:`~repro.obs.histogram.HistogramRegistry` (to
        share one registry across services, or for tests with custom
        bounds).
    observability:
        ``False`` turns off latency recording, report timing stamps
        and event logging entirely — the pre-tracing hot path, kept as
        the overhead baseline the benchmarks compare against.
    reactive_guard:
        Thermal-guard thresholds for streaming submissions (``None``
        derives them per request from its temperature limit via
        :meth:`repro.reactive.GuardConfig.from_limit`).
    reactive_config:
        Control-loop knobs (chunk, throttle factor, pause interval) of
        the streamed closed-loop execution.
    reactive_dt:
        Virtual-sensor integration/sampling step (s) for streamed runs.
    coalesce_window_ms:
        How long the dispatcher lingers after popping a job to let a
        burst pile up behind it before draining the queue into a
        coalesced batch (``0`` = drain only what is already queued).
        Only meaningful with ``max_batch > 1``.
    max_batch:
        Most jobs one worker-pool dispatch may solve as a coalesced
        group.  ``1`` (the default) disables coalescing entirely and
        preserves the one-job-per-dispatch behaviour — the benchmark
        baseline.  Drained jobs are grouped by thermal-model identity
        (same scenario geometry, or same named SoC) and effective
        timeout; each group becomes one executor task solving against
        shared model builds and memoised GEMMs, with per-job outcomes
        bit-identical to solo solves.
    """

    def __init__(
        self,
        backend: str | ExecutionBackend = "thread",
        max_workers: int | None = None,
        cache: ThermalModelCache | None = None,
        use_cache: bool = True,
        queue_size: int = 128,
        default_timeout_s: float | None = None,
        archive: "ReportArchive | str | Path | None" = None,
        min_workers: int | None = None,
        scale_down_idle_s: float = 2.0,
        worker_pool: AdaptiveWorkerPool | None = None,
        shed_watermark: int | None = None,
        answer_cache: AnswerCache | None = None,
        answer_cache_size: int = 256,
        answer_ttl_s: float | None = 300.0,
        warm_from: "str | Path | None" = None,
        logger: JsonLogger | None = None,
        slow_request_ms: float | None = None,
        histograms: HistogramRegistry | None = None,
        observability: bool = True,
        reactive_guard: GuardConfig | None = None,
        reactive_config: ReactiveConfig | None = None,
        reactive_dt: float = 5e-3,
        coalesce_window_ms: float = 0.0,
        max_batch: int = 1,
    ) -> None:
        if isinstance(backend, ExecutionBackend):
            self._backend = backend
        else:
            self._backend = create_backend(backend, max_workers=max_workers)
        if queue_size < 1:
            raise ServiceError(f"queue_size must be >= 1, got {queue_size!r}")
        if default_timeout_s is not None and default_timeout_s <= 0.0:
            raise ServiceError(
                f"default_timeout_s must be positive, got {default_timeout_s!r}"
            )
        if shed_watermark is not None and not (
            1 <= shed_watermark <= queue_size
        ):
            raise ServiceError(
                f"shed_watermark must be within [1, queue_size={queue_size}], "
                f"got {shed_watermark!r}"
            )
        self._use_cache = use_cache
        self._cache = (
            resolve_cache(cache, use_cache)
            if self._backend.shares_memory
            else None
        )
        self._queue_size = queue_size
        self._default_timeout_s = default_timeout_s
        self._shed_watermark = shed_watermark
        if archive is not None and not isinstance(archive, ReportArchive):
            archive = ReportArchive(archive)
        self._archive = archive
        if worker_pool is not None:
            self._pool = worker_pool
        else:
            self._pool = AdaptiveWorkerPool(
                min_workers=(
                    self._backend.max_workers
                    if min_workers is None
                    else min_workers
                ),
                max_workers=self._backend.max_workers,
                scale_down_idle_s=scale_down_idle_s,
            )
        if self._pool.max_workers > self._backend.max_workers:
            raise ServiceError(
                f"worker pool max ({self._pool.max_workers}) exceeds the "
                f"backend's {self._backend.max_workers} workers"
            )
        if answer_cache_size < 0:
            raise ServiceError(
                f"answer_cache_size must be >= 0 (0 disables), "
                f"got {answer_cache_size!r}"
            )
        if answer_cache is not None:
            self._answer_cache: AnswerCache | None = answer_cache
        elif answer_cache_size > 0:
            self._answer_cache = AnswerCache(
                max_entries=answer_cache_size, ttl_s=answer_ttl_s
            )
        else:
            self._answer_cache = None
        if warm_from is not None and self._answer_cache is None:
            raise ServiceError(
                "warm_from needs the answer cache; do not combine it with "
                "answer_cache_size=0"
            )
        self._warm_from = warm_from
        #: The cache outlives stop(); warm only the first start, or a
        #: restart would re-decode the whole archive, refresh TTLs and
        #: double-count the warmed stat.
        self._warmed_once = False

        if slow_request_ms is not None and slow_request_ms <= 0.0:
            raise ServiceError(
                f"slow_request_ms must be positive, got {slow_request_ms!r}"
            )
        self._observability = observability
        self._latency = (
            histograms if histograms is not None else HistogramRegistry()
        )
        if observability:
            # Pre-create the families so an idle service's metrics
            # exposition already lists every histogram at zero.
            for family in LATENCY_FAMILIES + DWELL_FAMILIES + BATCH_FAMILIES:
                self._latency.histogram(family)
        if reactive_dt <= 0.0:
            raise ServiceError(
                f"reactive_dt must be positive, got {reactive_dt!r}"
            )
        if max_batch < 1:
            raise ServiceError(
                f"max_batch must be >= 1 (1 disables coalescing), "
                f"got {max_batch!r}"
            )
        if coalesce_window_ms < 0.0:
            raise ServiceError(
                f"coalesce_window_ms must be >= 0, "
                f"got {coalesce_window_ms!r}"
            )
        self._max_batch = max_batch
        self._coalesce_window_s = coalesce_window_ms / 1e3
        self._reactive_guard = reactive_guard
        self._reactive_config = reactive_config
        self._reactive_dt = reactive_dt
        if logger is None and slow_request_ms is not None:
            logger = JsonLogger()  # slow-request logging needs a sink
        self._logger = logger
        self._slow_request_s = (
            None if slow_request_ms is None else slow_request_ms / 1e3
        )

        self._started = False
        self._accepting = False
        self._loop: asyncio.AbstractEventLoop | None = None
        self._queue: "asyncio.Queue[ServiceJob]" | None = None
        self._executor = None
        self._dispatcher: asyncio.Task | None = None
        self._heartbeat: asyncio.Task | None = None
        #: Everything a drain must wait for: job tasks + archive appends.
        self._tasks: set[asyncio.Task] = set()
        #: Job tasks only — the `in_flight` metric must count jobs
        #: occupying workers, not background archive writes.
        self._job_tasks: set[asyncio.Task] = set()
        self._inflight: dict[str, ServiceJob] = {}
        self._started_at = 0.0

        self._submitted = 0  # guarded-by: event-loop
        self._deduped = 0  # guarded-by: event-loop
        self._completed = 0  # guarded-by: event-loop
        self._errors = 0  # guarded-by: event-loop
        self._timeouts = 0  # guarded-by: event-loop
        self._rejected = 0  # guarded-by: event-loop
        self._shed = 0  # guarded-by: event-loop
        self._answer_hits = 0  # guarded-by: event-loop
        self._solves_started = 0  # guarded-by: event-loop
        self._solves_completed = 0  # guarded-by: event-loop
        self._cache_hits = 0  # guarded-by: event-loop
        self._coalesced_batches = 0  # guarded-by: event-loop
        self._coalesced_solves = 0  # guarded-by: event-loop
        self._archive_errors = 0  # guarded-by: event-loop
        self._reactive_runs = 0  # guarded-by: event-loop
        self._guard_transitions = 0  # guarded-by: event-loop
        self._reactive_throttles = 0  # guarded-by: event-loop
        self._reactive_pauses = 0  # guarded-by: event-loop
        self._reactive_errors = 0  # guarded-by: event-loop

    # -- properties --------------------------------------------------------------------

    @property
    def backend(self) -> ExecutionBackend:
        """The engine backend providing the worker pool."""
        return self._backend

    @property
    def cache(self) -> ThermalModelCache | None:
        """The shared model cache (``None`` for process workers)."""
        return self._cache

    @property
    def answer_cache(self) -> AnswerCache | None:
        """The TTL answer cache (``None`` when disabled)."""
        return self._answer_cache

    @property
    def worker_pool(self) -> AdaptiveWorkerPool:
        """The adaptive admission gate in front of the executor."""
        return self._pool

    @property
    def archive(self) -> ReportArchive | None:
        """The JSONL archive resolved outcomes are appended to."""
        return self._archive

    @property
    def running(self) -> bool:
        """True between :meth:`start` and :meth:`stop`."""
        return self._started

    @property
    def latency_histograms(self) -> HistogramRegistry:
        """The latency histogram registry (always present; recording
        only happens with ``observability=True``)."""
        return self._latency

    def describe_config(self) -> str:
        """One-line static configuration (the serve banner's body).

        Shared with the CLI so the banner cannot drift from the
        service's actual knobs.
        """
        pool = self._pool
        if pool.min_workers != pool.max_workers:
            workers = f"{pool.min_workers}..{pool.max_workers} workers"
        else:
            workers = f"{pool.max_workers} workers"
        cache = self._answer_cache
        if cache is None:
            answers = "answer cache off"
        else:
            ttl = (
                "no TTL" if cache.ttl_s is None else f"TTL {cache.ttl_s:g} s"
            )
            answers = f"answer cache {len(cache)}/{cache.max_entries} ({ttl})"
        coalesce = ""
        if self._max_batch > 1:
            coalesce = (
                f", coalesce <={self._max_batch} jobs"
                f"/{self._coalesce_window_s * 1e3:g} ms"
            )
        return (
            f"backend {self._backend.name!r}, {workers}, "
            f"queue {self._queue_size}, {answers}{coalesce}"
        )

    def _log_event(self, event: str, **fields: Any) -> None:
        if self._logger is not None:
            self._logger.log(event, **fields)

    # -- lifecycle ---------------------------------------------------------------------

    async def start(self) -> None:
        """Bring up the queue, the dispatcher and the worker pool.

        With ``warm_from`` set, the answer cache is populated from the
        archive first (on an executor thread — decoding revalidates
        every schedule), so the very first request can already hit.
        """
        if self._started:
            raise ServiceError("service is already started")
        self._loop = asyncio.get_running_loop()
        if self._warm_from is not None and not self._warmed_once:
            assert self._answer_cache is not None
            await self._loop.run_in_executor(
                None,
                partial(
                    warm_cache_from_archive, self._answer_cache, self._warm_from
                ),
            )
            self._warmed_once = True
        self._queue = asyncio.Queue(maxsize=self._queue_size)
        self._executor = self._backend.create_executor()
        if self._pool.min_workers < self._pool.max_workers:
            # Submissions/completions stop observing when traffic stops;
            # the heartbeat keeps feeding the pool so the documented
            # idle scale-down happens even on a silent service.
            self._heartbeat = asyncio.create_task(self._scale_heartbeat())
        if self._backend.shares_memory:
            self._worker = partial(solve_request_outcome, cache=self._cache)
            self._batch_worker = partial(
                solve_requests_batch, cache=self._cache
            )
        elif self._use_cache:
            self._worker = process_solve
            self._batch_worker = process_solve_batch
        else:
            self._worker = process_solve_uncached
            self._batch_worker = process_solve_batch_uncached
        self._started_at = time.perf_counter()
        self._dispatcher = asyncio.create_task(self._dispatch_loop())
        self._accepting = True
        self._started = True

    async def stop(self, drain: bool = True) -> None:
        """Shut down; idempotent.

        Parameters
        ----------
        drain:
            ``True`` (default) finishes every queued and in-flight job
            before returning; ``False`` fails queued jobs with
            :class:`~repro.errors.ServiceClosedError` and only waits for
            the solves already on workers (a pool cannot abandon them
            mid-solve without leaking the worker).

        Either way, on return no pending futures remain and the
        executor is joined.
        """
        if not self._started:
            return
        self._accepting = False
        assert self._queue is not None and self._loop is not None
        if drain:
            while self._inflight or not self._queue.empty() or self._tasks:
                await asyncio.sleep(0.01)
        else:
            while not self._queue.empty():
                job = self._queue.get_nowait()
                self._inflight.pop(job.key, None)
                if not job.future.done():
                    job.future.set_exception(
                        ServiceClosedError("service stopped before this job ran")
                    )
            # Finishing jobs may spawn archive-append tasks; loop until
            # genuinely quiet.
            while self._tasks:
                await asyncio.gather(*tuple(self._tasks), return_exceptions=True)
            # A submitter may have been awaiting queue space when we
            # flushed; fail whatever is left unresolved.
            for job in list(self._inflight.values()):
                if not job.future.done():
                    job.future.set_exception(
                        ServiceClosedError("service stopped before this job ran")
                    )
            self._inflight.clear()
        assert self._dispatcher is not None
        self._dispatcher.cancel()
        try:
            await self._dispatcher
        except asyncio.CancelledError:
            pass
        if self._heartbeat is not None:
            self._heartbeat.cancel()
            try:
                await self._heartbeat
            except asyncio.CancelledError:
                pass
            self._heartbeat = None
        # shutdown(wait=True) blocks until zombie (timed-out) solves
        # finish; hop to a helper thread so the loop stays responsive.
        executor = self._executor
        await self._loop.run_in_executor(
            None, partial(executor.shutdown, wait=True)
        )
        self._started = False

    async def __aenter__(self) -> "ScheduleService":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.stop(drain=True)

    # -- submission --------------------------------------------------------------------

    def _cached_job(
        self, request: ScheduleRequest, key: str, outcome: SolveOutcome
    ) -> ServiceJob:
        """A pre-resolved job carrying the answer cache's outcome.

        The stored outcome is re-stamped with ``cached=True`` on every
        hit, so provenance survives the wire and the client can tell a
        memory answer from a fresh solve.
        """
        assert self._loop is not None
        assert outcome.report is not None
        served = dataclasses.replace(
            outcome, report=dataclasses.replace(outcome.report, cached=True)
        )
        job = ServiceJob(request, key, None, self._loop.create_future())
        job.future.set_result(served)
        self._submitted += 1
        self._answer_hits += 1
        return job

    def _prepare(
        self, request: ScheduleRequest, timeout_s: float | None
    ) -> tuple[ServiceJob, bool]:
        if not isinstance(request, ScheduleRequest):
            raise ServiceError(
                f"submit() takes a ScheduleRequest, got {type(request).__name__}"
            )
        if not self._started or not self._accepting:
            raise ServiceClosedError("service is not accepting requests")
        if timeout_s is not None and timeout_s <= 0.0:
            raise ServiceError(f"timeout_s must be positive, got {timeout_s!r}")
        key = request.content_hash()
        # Answer cache first: a stored answer needs no queue slot, no
        # worker and no dedup bookkeeping.  (An expired entry reports a
        # miss and falls through to a fresh solve — never served stale.)
        if self._answer_cache is not None:
            lookup_start = time.perf_counter()
            stored = self._answer_cache.get(key)
            if stored is not None:
                job = self._cached_job(request, key, stored)
                if self._observability:
                    hit_s = time.perf_counter() - lookup_start
                    self._latency.observe("answer_hit", hit_s)
                    # e2e covers *every* answered submission; hits are
                    # what makes its distribution bimodal.
                    self._latency.observe("e2e", hit_s)
                    self._log_event(
                        "request_cache_hit",
                        request_hash=key,
                        solver=request.solver,
                    )
                return job, False
        existing = self._inflight.get(key)
        if existing is not None:
            self._submitted += 1
            self._deduped += 1
            existing.waiters += 1
            if self._observability:
                self._log_event(
                    "request_deduped",
                    request_hash=key,
                    solver=request.solver,
                    waiters=existing.waiters,
                )
            return existing, False
        if (
            self._shed_watermark is not None
            and self._queue is not None
            and self._queue.qsize() >= self._shed_watermark
        ):
            self._rejected += 1
            self._shed += 1
            if self._observability:
                self._log_event(
                    "request_shed",
                    request_hash=key,
                    solver=request.solver,
                    queue_depth=self._queue.qsize(),
                )
            raise ServiceBusyError(
                f"job queue depth reached the shed watermark "
                f"({self._shed_watermark}); retry later",
                retry_after_s=self._busy_retry_after_s(),
            )
        assert self._loop is not None
        job = ServiceJob(
            request,
            key,
            self._default_timeout_s if timeout_s is None else timeout_s,
            self._loop.create_future(),
        )
        self._inflight[key] = job
        self._submitted += 1
        if self._observability:
            self._log_event(
                "request_admitted",
                request_hash=key,
                solver=request.solver,
                timeout_s=job.timeout_s,
                queue_depth=(
                    self._queue.qsize() if self._queue is not None else 0
                ),
            )
        return job, True

    def _busy_retry_after_s(self) -> float:
        """Backoff hint for busy rejections: roughly one queue drain.

        Queue depth over current worker concurrency, scaled by the
        median solve latency (0.5 s when no solve has been timed yet),
        clamped to [0.05 s, 30 s].  Deliberately rough — the point is
        that the *server* knows its own backlog better than a client's
        blind exponential schedule does.
        """
        depth = (
            self._queue.qsize() if self._queue is not None else self._queue_size
        )
        workers = max(1, self._pool.current_workers)
        solve = self._latency.snapshot().get("solve") or {}
        p50 = solve.get("p50")
        # Explicit None check: ``or`` would throw away a *measured*
        # median of exactly 0.0 s (sub-resolution solves) and inflate
        # the hint with the 0.5 s prior; only an absent quantile may
        # fall back.
        per_solve = 0.5 if p50 is None else p50
        return min(max(max(depth, 1) / workers * per_solve, 0.05), 30.0)

    async def submit(
        self,
        request: ScheduleRequest,
        *,
        timeout_s: float | None = None,
        stream: bool = False,
    ) -> ServiceJob:
        """Enqueue a request, awaiting queue space if the service is full.

        Identical in-flight requests (same content hash) share one
        :class:`ServiceJob`; the returned job may therefore already be
        running — or even already done.

        With ``stream=True`` the job runs the closed-loop reactive
        phase once its solve resolves ok, broadcasting the event
        timeline to every queue obtained via :meth:`ServiceJob.subscribe`
        (call it right after this method returns, before any await).
        """
        job, fresh = self._prepare(request, timeout_s)
        if stream:
            job.streaming = True
            if job.future.done():
                # Answer-cache hit (or attach to an already-finished
                # job): _finish will not run again, so the reactive
                # phase must be scheduled here.
                self._ensure_reactive(job)
        if fresh:
            assert self._queue is not None
            try:
                await self._queue.put(job)
                self._pool.observe(self._queue.qsize())
            except asyncio.CancelledError:
                # The caller was cancelled while waiting for queue
                # space.  Other clients may have dedup-attached to this
                # job in the meantime; their answers must not die with
                # the canceller, so if space has freed up the job is
                # queued on their behalf (the cancelled submission
                # stays counted — the solve it owns will happen).
                if (
                    job.waiters
                    and self._accepting
                    and self._inflight.get(job.key) is job
                ):
                    try:
                        self._queue.put_nowait(job)
                    except asyncio.QueueFull:
                        pass
                    else:
                        self._pool.observe(self._queue.qsize())
                        raise
                # Abandoned for real: the job never reached the queue,
                # so it must not linger in the dedup map (later
                # identical requests would attach to a solve that will
                # never run, and drain would wait on it forever), and
                # it must not count as submitted —
                # ``submitted == solves_started + deduped + answer_hits``
                # is the invariant the stats frame advertises.
                self._submitted -= 1
                if job.waiters and self._accepting:
                    # Waiters on a *running* service receive busy
                    # errors ("retry" is honest advice): they move
                    # from the dedup tally to the rejected one, like
                    # any other ServiceBusyError refusal.  On a
                    # stopping service they get ServiceClosedError
                    # below instead — telling them to retry against a
                    # draining service would be a lie, and shutdown
                    # fallout must not pollute the load-shedding gauge.
                    self._submitted -= job.waiters
                    self._deduped -= job.waiters
                    self._rejected += job.waiters
                if self._inflight.get(job.key) is job:
                    del self._inflight[job.key]
                if not job.future.done():
                    job.future.set_exception(
                        ServiceBusyError(
                            "the queue was full and the originating "
                            "submission was cancelled before this request "
                            "could be queued; retry",
                            retry_after_s=self._busy_retry_after_s(),
                        )
                        if job.waiters and self._accepting
                        else ServiceClosedError(
                            "submission cancelled before it was queued"
                        )
                    )
                    job.future.exception()  # retrieved: no GC warning
                raise
        return job

    def submit_nowait(
        self,
        request: ScheduleRequest,
        *,
        timeout_s: float | None = None,
        stream: bool = False,
    ) -> ServiceJob:
        """Enqueue a request or raise :class:`ServiceBusyError` if full.

        Dedup-attached submissions never count against the queue bound
        (they occupy no new slot).  ``stream=True`` behaves exactly as
        on :meth:`submit`: the job runs the closed-loop reactive phase
        once its solve resolves ok — including the answer-cache-hit
        and attached-to-finished-job cases, whose futures are already
        done when this method returns.
        """
        job, fresh = self._prepare(request, timeout_s)
        if stream:
            job.streaming = True
            if job.future.done():
                # Answer-cache hit (or attach to an already-finished
                # job): _finish will not run again, so the reactive
                # phase must be scheduled here.
                self._ensure_reactive(job)
        if fresh:
            assert self._queue is not None
            try:
                self._queue.put_nowait(job)
                self._pool.observe(self._queue.qsize())
            except asyncio.QueueFull:
                self._inflight.pop(job.key, None)
                self._submitted -= 1
                self._rejected += 1
                raise ServiceBusyError(
                    f"job queue is full ({self._queue_size} waiting); "
                    f"retry later or use the awaiting submit path",
                    retry_after_s=self._busy_retry_after_s(),
                ) from None
        return job

    async def solve(
        self, request: ScheduleRequest, *, timeout_s: float | None = None
    ) -> SolveReport:
        """Submit and await in one call; solve failures raise."""
        job = await self.submit(request, timeout_s=timeout_s)
        return await job.report()

    # -- dispatch ----------------------------------------------------------------------

    async def _dispatch_loop(self) -> None:
        assert self._queue is not None
        while True:
            # Acquire the worker slot *before* popping, so jobs stay in
            # the queue (and count against its bound) until a worker is
            # genuinely free — total admitted work is at most
            # ``max_workers + queue_size``.  While this loop is parked
            # on an empty queue the claimed slot is flagged as idle, so
            # the pool's scaling policy counts it as spare capacity
            # rather than as a busy worker.
            await self._pool.acquire()
            self._pool.mark_idle_claim()
            try:
                job = await self._queue.get()
            except asyncio.CancelledError:
                # stop() cancels this loop while it holds an idle slot;
                # the pool outlives the stop (unlike the per-start
                # queue), so the slot must go back or a later start()
                # would find it permanently leaked.
                self._pool.clear_idle_claim()
                self._pool.release()
                raise
            self._pool.clear_idle_claim()
            if self._max_batch > 1:
                await self._dispatch_coalesced(job)
            else:
                self._spawn_job_task(self._run_job(job))

    def _spawn_job_task(self, coro: "Any") -> None:
        """Track one job (or group) task for drain and ``in_flight``."""
        task = asyncio.create_task(coro)
        self._tasks.add(task)
        self._job_tasks.add(task)
        task.add_done_callback(self._tasks.discard)
        task.add_done_callback(self._job_tasks.discard)

    @staticmethod
    def _coalesce_key(job: ServiceJob) -> tuple:
        """Compatibility class of one job for batch grouping.

        Coarser than the request's content hash: everything that maps
        to the same thermal *network* (same scenario geometry, or the
        same named SoC) can share model builds and memoised GEMMs, so
        requests differing only in limits, solver or power inputs still
        coalesce.  The effective timeout joins the key because a group
        runs under a single deadline.
        """
        request = job.request
        if request.scenario is not None:
            thermal: tuple = ("scenario",) + request.scenario.thermal_key()
        else:
            thermal = ("soc", request.soc)
        return thermal + (job.timeout_s,)

    async def _dispatch_coalesced(self, first: ServiceJob) -> None:
        """Drain compatible neighbours of one popped job; dispatch groups.

        Called with *first* already popped and its worker slot held.
        Lingers up to the coalesce window for a burst to pile up, then
        drains whatever is queued (at most ``max_batch`` jobs in hand),
        groups by :meth:`_coalesce_key` and dispatches each group as
        one executor task.  The first group rides the already-held
        slot; every further group acquires its own, so coalescing never
        exceeds the pool's admission target.
        """
        assert self._queue is not None
        pending: list[ServiceJob] = [first]
        slot_held = True
        try:
            if (
                self._coalesce_window_s > 0.0
                and self._queue.qsize() + 1 < self._max_batch
            ):
                await asyncio.sleep(self._coalesce_window_s)
            while len(pending) < self._max_batch:
                try:
                    pending.append(self._queue.get_nowait())
                except asyncio.QueueEmpty:
                    break
            groups: "dict[tuple, list[ServiceJob]]" = {}
            for job in pending:
                groups.setdefault(self._coalesce_key(job), []).append(job)
            for jobs in list(groups.values()):
                if not slot_held:
                    await self._pool.acquire()
                slot_held = False
                for job in jobs:
                    pending.remove(job)
                if self._observability:
                    self._latency.observe("batch_size", float(len(jobs)))
                if len(jobs) == 1:
                    self._spawn_job_task(self._run_job(jobs[0]))
                else:
                    self._coalesced_batches += 1
                    self._coalesced_solves += len(jobs)
                    self._spawn_job_task(self._run_group(jobs))
        except asyncio.CancelledError:
            # Only stop() cancels the dispatcher, and a drain waits for
            # in-flight jobs first — so this fires only on
            # stop(drain=False), with jobs in hand that already left
            # the queue.  They must be answered here or their futures
            # would dangle past stop()'s no-pending-futures promise.
            if slot_held:
                self._pool.release()
            for job in pending:
                self._inflight.pop(job.key, None)
                if not job.future.done():
                    job.future.set_exception(
                        ServiceClosedError(
                            "service stopped before this job ran"
                        )
                    )
                    job.future.exception()  # retrieved: no GC warning
            raise

    async def _scale_heartbeat(self) -> None:
        """Periodic pool observation for adaptive bands.

        Half the idle hysteresis per tick: frequent enough that the
        scale-down window is honoured within ~1.5x its nominal value,
        rare enough to be free.
        """
        interval = max(0.05, self._pool.scale_down_idle_s / 2.0)
        while True:
            await asyncio.sleep(interval)
            if self._queue is not None:
                self._pool.observe(self._queue.qsize())

    def _release_slot(self) -> None:
        """Give a worker slot back and feed the pool an observation."""
        self._pool.release()
        if self._queue is not None:
            self._pool.observe(self._queue.qsize())

    async def _run_job(self, job: ServiceJob) -> None:
        assert self._loop is not None
        self._solves_started += 1
        # Dispatch happens with a worker slot already held, so this one
        # duration covers both the queue and slot acquisition.
        job.queue_wait_s = time.perf_counter() - job.submitted_at
        if self._observability:
            self._latency.observe("queue_wait", job.queue_wait_s)
        try:
            worker_future = self._loop.run_in_executor(
                self._executor, self._worker, job.request
            )
        except Exception as exc:  # executor refused (shutting down, ...)
            self._release_slot()
            self._finish(job, error_outcome(exc, 0.0))
            return
        slot_released = False
        try:
            if job.timeout_s is not None:
                try:
                    outcome = await asyncio.wait_for(
                        asyncio.shield(worker_future), job.timeout_s
                    )
                except asyncio.TimeoutError:
                    # The pool cannot interrupt a running solve; the
                    # zombie keeps its worker slot until it finishes,
                    # then the callback frees it and counts it.
                    self._timeouts += 1
                    slot_released = True
                    worker_future.add_done_callback(self._zombie_done)
                    self._finish(
                        job,
                        SolveOutcome(
                            status="error",
                            report=None,
                            error=(
                                f"TimeoutError: solve exceeded its "
                                f"{job.timeout_s:g} s budget"
                            ),
                            error_type="TimeoutError",
                            elapsed_s=job.timeout_s,
                        ),
                    )
                    return
            else:
                outcome = await worker_future
        except Exception as exc:  # pool failure: broken pool, pickling, ...
            outcome = error_outcome(exc, 0.0)
        finally:
            if not slot_released:
                self._release_slot()
        self._solves_completed += 1
        self._finish(job, outcome)

    def _zombie_done(self, future: "asyncio.Future") -> None:
        self._release_slot()
        self._solves_completed += 1
        if not future.cancelled():
            future.exception()  # retrieve, silencing the loop's warning

    async def _run_group(self, jobs: "list[ServiceJob]") -> None:
        """Run one coalesced group as a single executor task.

        Mirrors :meth:`_run_job` with the group as the unit of
        execution — one worker slot, one executor dispatch, one
        deadline (the jobs share a timeout; the coalesce key pins it) —
        while the accounting stays per job: every member counts in
        ``solves_started``/``solves_completed``, observes its own
        ``queue_wait``, and resolves through its own :meth:`_finish`
        with its own outcome.  The batch worker answers per-request, so
        a mid-group infeasible request errors alone.
        """
        assert self._loop is not None
        self._solves_started += len(jobs)
        now = time.perf_counter()
        for job in jobs:
            job.queue_wait_s = now - job.submitted_at
            if self._observability:
                self._latency.observe("queue_wait", job.queue_wait_s)
        requests = [job.request for job in jobs]
        try:
            worker_future = self._loop.run_in_executor(
                self._executor, self._batch_worker, requests
            )
        except Exception as exc:  # executor refused (shutting down, ...)
            self._release_slot()
            for job in jobs:
                self._finish(job, error_outcome(exc, 0.0))
            return
        timeout_s = jobs[0].timeout_s
        slot_released = False
        try:
            if timeout_s is not None:
                try:
                    outcomes = await asyncio.wait_for(
                        asyncio.shield(worker_future), timeout_s
                    )
                except asyncio.TimeoutError:
                    # The whole group shares the zombie worker; every
                    # member times out and the done-callback frees the
                    # slot and counts all of them when it finishes.
                    self._timeouts += len(jobs)
                    slot_released = True
                    worker_future.add_done_callback(
                        partial(self._zombie_group_done, len(jobs))
                    )
                    for job in jobs:
                        self._finish(
                            job,
                            SolveOutcome(
                                status="error",
                                report=None,
                                error=(
                                    f"TimeoutError: solve exceeded its "
                                    f"{timeout_s:g} s budget"
                                ),
                                error_type="TimeoutError",
                                elapsed_s=timeout_s,
                            ),
                        )
                    return
            else:
                outcomes = await worker_future
        except Exception as exc:  # pool failure: broken pool, pickling, ...
            outcomes = [error_outcome(exc, 0.0) for _ in jobs]
        finally:
            if not slot_released:
                self._release_slot()
        self._solves_completed += len(jobs)
        for job, outcome in zip(jobs, outcomes):
            self._finish(job, outcome)

    def _zombie_group_done(
        self, size: int, future: "asyncio.Future"
    ) -> None:
        self._release_slot()
        self._solves_completed += size
        if not future.cancelled():
            future.exception()  # retrieve, silencing the loop's warning

    def _finish(self, job: ServiceJob, outcome: SolveOutcome) -> None:
        self._inflight.pop(job.key, None)
        e2e_s = time.perf_counter() - job.submitted_at
        if self._observability:
            outcome = self._stamp_timings(job, outcome, e2e_s)
            self._latency.observe("e2e", e2e_s)
            if outcome.ok:
                self._latency.observe("solve", outcome.elapsed_s)
        if outcome.ok:
            self._completed += 1
            if outcome.cache_hit:
                self._cache_hits += 1
            if self._answer_cache is not None:
                self._answer_cache.put(job.key, outcome)
        else:
            self._errors += 1
        if self._observability:
            self._log_finished(job, outcome, e2e_s)
        if self._archive is not None:
            self._schedule_archive_append(job, outcome)
        if not job.future.done():
            job.future.set_result(outcome)
        if job.streaming:
            self._ensure_reactive(job)

    def _stamp_timings(
        self, job: ServiceJob, outcome: SolveOutcome, e2e_s: float
    ) -> SolveOutcome:
        """Re-stamp an ok outcome's report with the service-side phases.

        ``queue_wait`` and ``service_total`` join the worker-side
        phases on the report, so the answer cache (and hence every
        later hit) serves the original solve's full trace.
        """
        if not outcome.ok or outcome.report is None:
            return outcome
        timings = dict(outcome.report.timings or {})
        if job.queue_wait_s is not None:
            timings["queue_wait"] = job.queue_wait_s
        timings["service_total"] = e2e_s
        return dataclasses.replace(
            outcome,
            report=dataclasses.replace(outcome.report, timings=timings),
        )

    def _log_finished(
        self, job: ServiceJob, outcome: SolveOutcome, e2e_s: float
    ) -> None:
        if self._logger is None:
            return
        timings = (
            dict(outcome.report.timings)
            if outcome.ok
            and outcome.report is not None
            and outcome.report.timings is not None
            else None
        )
        event = (
            "request_timed_out"
            if outcome.error_type == "TimeoutError"
            else "request_completed"
        )
        self._log_event(
            event,
            request_hash=job.key,
            solver=job.request.solver,
            status=outcome.status,
            error_type=outcome.error_type,
            waiters=job.waiters,
            queue_wait_s=job.queue_wait_s,
            solve_s=outcome.elapsed_s,
            e2e_s=e2e_s,
            timings=timings,
        )
        if self._slow_request_s is not None and e2e_s >= self._slow_request_s:
            self._log_event(
                "slow_request",
                request_hash=job.key,
                solver=job.request.solver,
                threshold_ms=self._slow_request_s * 1e3,
                e2e_s=e2e_s,
                timings=timings,
            )

    def _schedule_archive_append(
        self, job: ServiceJob, outcome: SolveOutcome
    ) -> None:
        """Append to the archive off the event loop.

        Per-record file I/O on the loop thread would stall every
        connection on disk latency; the write runs on the loop's
        default thread pool instead.  The task joins ``self._tasks``
        so a drain flushes the archive before :meth:`stop` returns,
        and a failing disk only bumps a counter — it must not take
        the service down.
        """
        assert self._loop is not None and self._archive is not None

        async def _append() -> None:
            append_start = time.perf_counter()
            try:
                await self._loop.run_in_executor(
                    None,
                    partial(
                        self._archive.append_outcome,
                        job.request,
                        outcome,
                        request_hash=job.key,
                    ),
                )
            except Exception:
                self._archive_errors += 1
            else:
                if self._observability:
                    self._latency.observe(
                        "archive_append", time.perf_counter() - append_start
                    )

        task = asyncio.create_task(_append())
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)

    # -- reactive streaming ------------------------------------------------------------

    def _ensure_reactive(self, job: ServiceJob) -> None:
        """Schedule the job's reactive phase exactly once (loop only)."""
        if job.reactive_task is not None:
            return
        task = asyncio.create_task(self._reactive_pump(job))
        job.reactive_task = task
        # Joined by drain: a stop() must not cut a watcher's stream.
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)

    def _broadcast(self, job: ServiceJob, event: dict[str, Any]) -> None:
        for queue in job.streams:
            queue.put_nowait(event)

    async def _reactive_pump(self, job: ServiceJob) -> None:
        """Run the closed-loop phase off-loop; stream its timeline.

        The executor runs on a thread (`run_in_executor`) — transient
        solves would stall the event loop.  Events cross back via
        ``call_soon_threadsafe``; because loop callbacks are FIFO, all
        of them land before the executor future resumes this coroutine,
        so the ``None`` sentinel is always last.
        """
        assert self._loop is not None
        try:
            outcome = job.future.result()
            if outcome.ok and outcome.report is not None:
                stored: ReactiveRunReport | None = None
                if outcome.report.cached and self._answer_cache is not None:
                    stored = self._answer_cache.reactive_report(job.key)
                if stored is not None:
                    # Answer-cache hit with its timeline on record: the
                    # run is deterministic, so replaying the stored
                    # events is indistinguishable from re-simulating —
                    # minus the entire closed-loop transient cost.  A
                    # replay is not a new reactive run, so the run
                    # counters and dwell histograms stay untouched.
                    for event in stored.events:
                        self._broadcast(job, event.to_dict())
                    return
                loop = self._loop

                def forward(event: ReactiveEvent) -> None:
                    loop.call_soon_threadsafe(
                        self._broadcast, job, event.to_dict()
                    )

                report = await loop.run_in_executor(
                    None,
                    partial(
                        run_schedule_result,
                        outcome.report.result,
                        guard_config=self._reactive_guard,
                        config=self._reactive_config,
                        dt=self._reactive_dt,
                        on_event=forward,
                    ),
                )
                self._record_reactive(report)
                if self._answer_cache is not None:
                    # Keep the timeline beside the cached answer so the
                    # next hit on this key streams from memory.
                    self._answer_cache.put_reactive(job.key, report)
        except Exception as exc:
            self._reactive_errors += 1
            self._broadcast(
                job,
                {
                    "kind": "reactive_error",
                    "detail": f"{type(exc).__name__}: {exc}",
                },
            )
            self._log_event(
                "reactive_failed", request_hash=job.key, error=str(exc)
            )
        finally:
            self._broadcast_sentinel(job)

    def _broadcast_sentinel(self, job: ServiceJob) -> None:
        for queue in job.streams:
            queue.put_nowait(None)

    def _record_reactive(self, report: ReactiveRunReport) -> None:
        """Merge one reactive run into counters and dwell histograms."""
        self._reactive_runs += 1
        self._guard_transitions += sum(report.guard_transitions.values())
        self._reactive_throttles += report.throttles
        self._reactive_pauses += report.pauses
        if self._observability:
            for state, seconds in report.dwell_s.items():
                self._latency.observe(f"dwell_{state}", seconds)

    # -- metrics -----------------------------------------------------------------------

    def metrics(self) -> ServiceMetrics:
        """A point-in-time operational snapshot.

        When called on the service's event loop it also feeds the
        adaptive pool one load observation, sharpening the idle
        scale-down the background heartbeat already guarantees.  Called
        from any other thread it is a pure read — the pool's waiter
        future is loop-private state a foreign thread must not touch.
        """
        uptime = time.perf_counter() - self._started_at if self._started_at else 0.0
        answered = (
            self._completed + self._errors + self._answer_hits + self._deduped
        )
        queue_depth = self._queue.qsize() if self._queue is not None else 0
        if self._started:
            try:
                on_loop = asyncio.get_running_loop() is self._loop
            except RuntimeError:
                on_loop = False
            if on_loop:
                self._pool.observe(queue_depth)
        return ServiceMetrics(
            backend=self._backend.name,
            workers=self._pool.max_workers,
            min_workers=self._pool.min_workers,
            current_workers=self._pool.current_workers,
            scale_ups=self._pool.scale_ups,
            scale_downs=self._pool.scale_downs,
            queue_capacity=self._queue_size,
            queue_depth=queue_depth,
            in_flight=len(self._job_tasks),
            submitted=self._submitted,
            answer_hits=self._answer_hits,
            deduped=self._deduped,
            completed=self._completed,
            errors=self._errors,
            timeouts=self._timeouts,
            rejected=self._rejected,
            shed=self._shed,
            solves_started=self._solves_started,
            solves_completed=self._solves_completed,
            cache_hits=self._cache_hits,
            coalesced_batches=self._coalesced_batches,
            coalesced_solves=self._coalesced_solves,
            reactive_runs=self._reactive_runs,
            guard_transitions=self._guard_transitions,
            reactive_throttles=self._reactive_throttles,
            reactive_pauses=self._reactive_pauses,
            uptime_s=uptime,
            requests_per_s=answered / uptime if uptime > 0.0 else 0.0,
            cache=self._cache.stats if self._cache is not None else None,
            answer_cache=(
                self._answer_cache.stats
                if self._answer_cache is not None
                else None
            ),
            latency=(
                self._latency.snapshot() if self._observability else None
            ),
        )

    def metrics_text(self) -> str:
        """Prometheus text exposition (the ``metrics`` frame's payload)."""
        return render_metrics_text(self.metrics())

"""The long-lived asyncio scheduling service.

:class:`ScheduleService` is the queueing heart of ``repro serve``: it
accepts :class:`~repro.api.ScheduleRequest`\\ s on a bounded job queue,
dispatches them to a worker pool built from the batch engine's execution
backends, and resolves each submission's awaitable with a
:class:`~repro.service.execution.SolveOutcome`.

Design points:

* **Bounded queue, explicit backpressure** — :meth:`ScheduleService.submit`
  awaits queue space (a TCP handler that awaits it stops reading its
  socket, pushing the backpressure all the way to the client), while
  :meth:`ScheduleService.submit_nowait` raises
  :class:`~repro.errors.ServiceBusyError` for callers that would rather
  shed load than wait.
* **In-flight deduplication** — submissions are keyed by the request's
  stable :meth:`~repro.api.ScheduleRequest.content_hash`; while a solve
  for a given hash is queued or running, every identical submission
  attaches to the same :class:`ServiceJob` and one worker answers them
  all.  (Waiters share the job's outcome — including its timeout, which
  is fixed by the first submitter.)
* **Shared thermal models** — thread workers solve against the
  service's :class:`~repro.engine.cache.ThermalModelCache`; process
  workers use the same per-process cache as the batch runner, so a
  service interleaved with batches keeps its factorisations warm.
* **Graceful drain** — :meth:`ScheduleService.stop` (default
  ``drain=True``) stops accepting, lets the queue and every in-flight
  solve finish, resolves all futures, then joins the executor.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass
from functools import partial
from pathlib import Path
from typing import Any

from ..api.request import ScheduleRequest, SolveReport
from ..engine.backends import ExecutionBackend, create_backend
from ..engine.cache import CacheStats, ThermalModelCache, resolve_cache
from ..errors import ServiceBusyError, ServiceClosedError, ServiceError
from .archive import ReportArchive
from .execution import (
    SolveOutcome,
    error_outcome,
    process_solve,
    process_solve_uncached,
    solve_request_outcome,
)


class ServiceJob:
    """One queued or running solve, shared by all of its submitters.

    Attributes
    ----------
    request:
        The deduplicated request being solved.
    key:
        Its content hash (the dedup key).
    timeout_s:
        Effective solve timeout (``None`` = unbounded), fixed by the
        first submitter.
    """

    __slots__ = ("request", "key", "timeout_s", "future", "submitted_at")

    def __init__(
        self,
        request: ScheduleRequest,
        key: str,
        timeout_s: float | None,
        future: "asyncio.Future[SolveOutcome]",
    ) -> None:
        self.request = request
        self.key = key
        self.timeout_s = timeout_s
        self.future = future
        self.submitted_at = time.perf_counter()

    @property
    def done(self) -> bool:
        """True once the job's outcome is resolved."""
        return self.future.done()

    async def outcome(self) -> SolveOutcome:
        """Await the job's terminal record (never raises on solve errors).

        The future is shielded: cancelling one waiter does not cancel
        the shared solve the other submitters are still waiting on.
        """
        return await asyncio.shield(self.future)

    async def report(self) -> SolveReport:
        """Await the report; solve failures raise :class:`ServiceError`."""
        outcome = await self.outcome()
        if not outcome.ok:
            raise ServiceError(outcome.error)
        assert outcome.report is not None
        return outcome.report


@dataclass(frozen=True)
class ServiceMetrics:
    """Point-in-time operational snapshot of a :class:`ScheduleService`.

    Attributes
    ----------
    backend, workers, queue_capacity:
        Static configuration.
    queue_depth:
        Jobs waiting for a worker slot right now.
    in_flight:
        Jobs currently occupying a worker.
    submitted:
        Total submissions accepted (dedup-attached ones included).
    deduped:
        Submissions that attached to an already in-flight identical
        request instead of triggering a solve.
    completed, errors, timeouts:
        Jobs resolved ok / with an error outcome / of which timeouts.
    rejected:
        ``submit_nowait`` calls refused by a full queue.
    solves_started, solves_completed:
        Worker-pool executions — ``submitted - deduped`` submissions
        each start exactly one solve, which is how dedup is asserted.
    cache_hits:
        Solves whose thermal model came out of a cache.
    uptime_s, requests_per_s:
        Service age and resolved-jobs throughput over it.
    cache:
        Shared-cache statistics (``None`` for process workers, whose
        per-process caches are visible only via ``cache_hits``).
    """

    backend: str
    workers: int
    queue_capacity: int
    queue_depth: int
    in_flight: int
    submitted: int
    deduped: int
    completed: int
    errors: int
    timeouts: int
    rejected: int
    solves_started: int
    solves_completed: int
    cache_hits: int
    uptime_s: float
    requests_per_s: float
    cache: CacheStats | None = None

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready form (the stats wire frame's payload)."""
        data = {
            "backend": self.backend,
            "workers": self.workers,
            "queue_capacity": self.queue_capacity,
            "queue_depth": self.queue_depth,
            "in_flight": self.in_flight,
            "submitted": self.submitted,
            "deduped": self.deduped,
            "completed": self.completed,
            "errors": self.errors,
            "timeouts": self.timeouts,
            "rejected": self.rejected,
            "solves_started": self.solves_started,
            "solves_completed": self.solves_completed,
            "cache_hits": self.cache_hits,
            "uptime_s": self.uptime_s,
            "requests_per_s": self.requests_per_s,
        }
        if self.cache is not None:
            data["cache"] = {
                "hits": self.cache.hits,
                "misses": self.cache.misses,
                "entries": self.cache.entries,
                "evictions": self.cache.evictions,
            }
        return data

    @property
    def dedup_rate(self) -> float:
        """Fraction of submissions answered by an in-flight solve."""
        return self.deduped / self.submitted if self.submitted else 0.0

    def describe(self) -> str:
        """Multi-line human-readable snapshot."""
        lines = [
            f"schedule service on backend {self.backend!r} "
            f"({self.workers} workers, queue {self.queue_depth}/"
            f"{self.queue_capacity}, {self.in_flight} in flight)",
            f"  {self.submitted} submitted ({self.deduped} deduped, "
            f"{self.rejected} rejected), {self.completed} ok, "
            f"{self.errors} errors ({self.timeouts} timeouts)",
            f"  {self.solves_started} solves started / "
            f"{self.solves_completed} completed, {self.cache_hits} model "
            f"cache hits, {self.requests_per_s:.1f} req/s over "
            f"{self.uptime_s:.1f} s",
        ]
        if self.cache is not None:
            lines.append(f"  {self.cache.describe()}")
        return "\n".join(lines)


class ScheduleService:
    """Async scheduling service: bounded queue in, worker pool out.

    Parameters
    ----------
    backend:
        Engine backend name (``"thread"``, ``"process"``, ``"serial"``)
        or instance; its :meth:`~repro.engine.backends.ExecutionBackend.create_executor`
        provides the worker pool.
    max_workers:
        Worker count (ignored when *backend* is an instance).
    cache:
        Thermal-model cache shared by thread/serial workers; pass an
        existing one to share warm models with a
        :class:`~repro.api.Workbench` in the same process.
    use_cache:
        Disable model caching entirely (process workers then skip their
        per-process caches too).
    queue_size:
        Bound of the job queue — the backpressure threshold.
    default_timeout_s:
        Per-solve timeout applied when a submission names none
        (``None`` = unbounded).
    archive:
        A :class:`~repro.service.archive.ReportArchive` (or path) every
        resolved outcome is appended to.
    """

    def __init__(
        self,
        backend: str | ExecutionBackend = "thread",
        max_workers: int | None = None,
        cache: ThermalModelCache | None = None,
        use_cache: bool = True,
        queue_size: int = 128,
        default_timeout_s: float | None = None,
        archive: "ReportArchive | str | Path | None" = None,
    ) -> None:
        if isinstance(backend, ExecutionBackend):
            self._backend = backend
        else:
            self._backend = create_backend(backend, max_workers=max_workers)
        if queue_size < 1:
            raise ServiceError(f"queue_size must be >= 1, got {queue_size!r}")
        if default_timeout_s is not None and default_timeout_s <= 0.0:
            raise ServiceError(
                f"default_timeout_s must be positive, got {default_timeout_s!r}"
            )
        self._use_cache = use_cache
        self._cache = (
            resolve_cache(cache, use_cache)
            if self._backend.shares_memory
            else None
        )
        self._queue_size = queue_size
        self._default_timeout_s = default_timeout_s
        if archive is not None and not isinstance(archive, ReportArchive):
            archive = ReportArchive(archive)
        self._archive = archive

        self._started = False
        self._accepting = False
        self._loop: asyncio.AbstractEventLoop | None = None
        self._queue: "asyncio.Queue[ServiceJob]" | None = None
        self._sem: asyncio.Semaphore | None = None
        self._executor = None
        self._dispatcher: asyncio.Task | None = None
        #: Everything a drain must wait for: job tasks + archive appends.
        self._tasks: set[asyncio.Task] = set()
        #: Job tasks only — the `in_flight` metric must count jobs
        #: occupying workers, not background archive writes.
        self._job_tasks: set[asyncio.Task] = set()
        self._inflight: dict[str, ServiceJob] = {}
        self._started_at = 0.0

        self._submitted = 0
        self._deduped = 0
        self._completed = 0
        self._errors = 0
        self._timeouts = 0
        self._rejected = 0
        self._solves_started = 0
        self._solves_completed = 0
        self._cache_hits = 0
        self._archive_errors = 0

    # -- properties --------------------------------------------------------------------

    @property
    def backend(self) -> ExecutionBackend:
        """The engine backend providing the worker pool."""
        return self._backend

    @property
    def cache(self) -> ThermalModelCache | None:
        """The shared model cache (``None`` for process workers)."""
        return self._cache

    @property
    def archive(self) -> ReportArchive | None:
        """The JSONL archive resolved outcomes are appended to."""
        return self._archive

    @property
    def running(self) -> bool:
        """True between :meth:`start` and :meth:`stop`."""
        return self._started

    # -- lifecycle ---------------------------------------------------------------------

    async def start(self) -> None:
        """Bring up the queue, the dispatcher and the worker pool."""
        if self._started:
            raise ServiceError("service is already started")
        self._loop = asyncio.get_running_loop()
        self._queue = asyncio.Queue(maxsize=self._queue_size)
        self._sem = asyncio.Semaphore(self._backend.max_workers)
        self._executor = self._backend.create_executor()
        if self._backend.shares_memory:
            self._worker = partial(solve_request_outcome, cache=self._cache)
        elif self._use_cache:
            self._worker = process_solve
        else:
            self._worker = process_solve_uncached
        self._started_at = time.perf_counter()
        self._dispatcher = asyncio.create_task(self._dispatch_loop())
        self._accepting = True
        self._started = True

    async def stop(self, drain: bool = True) -> None:
        """Shut down; idempotent.

        Parameters
        ----------
        drain:
            ``True`` (default) finishes every queued and in-flight job
            before returning; ``False`` fails queued jobs with
            :class:`~repro.errors.ServiceClosedError` and only waits for
            the solves already on workers (a pool cannot abandon them
            mid-solve without leaking the worker).

        Either way, on return no pending futures remain and the
        executor is joined.
        """
        if not self._started:
            return
        self._accepting = False
        assert self._queue is not None and self._loop is not None
        if drain:
            while self._inflight or not self._queue.empty() or self._tasks:
                await asyncio.sleep(0.01)
        else:
            while not self._queue.empty():
                job = self._queue.get_nowait()
                self._inflight.pop(job.key, None)
                if not job.future.done():
                    job.future.set_exception(
                        ServiceClosedError("service stopped before this job ran")
                    )
            # Finishing jobs may spawn archive-append tasks; loop until
            # genuinely quiet.
            while self._tasks:
                await asyncio.gather(*tuple(self._tasks), return_exceptions=True)
            # A submitter may have been awaiting queue space when we
            # flushed; fail whatever is left unresolved.
            for job in list(self._inflight.values()):
                if not job.future.done():
                    job.future.set_exception(
                        ServiceClosedError("service stopped before this job ran")
                    )
            self._inflight.clear()
        assert self._dispatcher is not None
        self._dispatcher.cancel()
        try:
            await self._dispatcher
        except asyncio.CancelledError:
            pass
        # shutdown(wait=True) blocks until zombie (timed-out) solves
        # finish; hop to a helper thread so the loop stays responsive.
        executor = self._executor
        await self._loop.run_in_executor(
            None, partial(executor.shutdown, wait=True)
        )
        self._started = False

    async def __aenter__(self) -> "ScheduleService":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.stop(drain=True)

    # -- submission --------------------------------------------------------------------

    def _prepare(
        self, request: ScheduleRequest, timeout_s: float | None
    ) -> tuple[ServiceJob, bool]:
        if not isinstance(request, ScheduleRequest):
            raise ServiceError(
                f"submit() takes a ScheduleRequest, got {type(request).__name__}"
            )
        if not self._started or not self._accepting:
            raise ServiceClosedError("service is not accepting requests")
        if timeout_s is not None and timeout_s <= 0.0:
            raise ServiceError(f"timeout_s must be positive, got {timeout_s!r}")
        key = request.content_hash()
        existing = self._inflight.get(key)
        if existing is not None:
            self._submitted += 1
            self._deduped += 1
            return existing, False
        assert self._loop is not None
        job = ServiceJob(
            request,
            key,
            self._default_timeout_s if timeout_s is None else timeout_s,
            self._loop.create_future(),
        )
        self._inflight[key] = job
        self._submitted += 1
        return job, True

    async def submit(
        self, request: ScheduleRequest, *, timeout_s: float | None = None
    ) -> ServiceJob:
        """Enqueue a request, awaiting queue space if the service is full.

        Identical in-flight requests (same content hash) share one
        :class:`ServiceJob`; the returned job may therefore already be
        running — or even already done.
        """
        job, fresh = self._prepare(request, timeout_s)
        if fresh:
            assert self._queue is not None
            try:
                await self._queue.put(job)
            except asyncio.CancelledError:
                # The caller was cancelled while waiting for queue
                # space; the job never reached the queue, so it must
                # not linger in the dedup map (later identical requests
                # would attach to a solve that will never run, and
                # drain would wait on it forever).
                if self._inflight.get(job.key) is job:
                    del self._inflight[job.key]
                if not job.future.done():
                    job.future.set_exception(
                        ServiceClosedError(
                            "submission cancelled before it was queued"
                        )
                    )
                    job.future.exception()  # retrieved: no GC warning
                raise
        return job

    def submit_nowait(
        self, request: ScheduleRequest, *, timeout_s: float | None = None
    ) -> ServiceJob:
        """Enqueue a request or raise :class:`ServiceBusyError` if full.

        Dedup-attached submissions never count against the queue bound
        (they occupy no new slot).
        """
        job, fresh = self._prepare(request, timeout_s)
        if fresh:
            assert self._queue is not None
            try:
                self._queue.put_nowait(job)
            except asyncio.QueueFull:
                self._inflight.pop(job.key, None)
                self._submitted -= 1
                self._rejected += 1
                raise ServiceBusyError(
                    f"job queue is full ({self._queue_size} waiting); "
                    f"retry later or use the awaiting submit path"
                ) from None
        return job

    async def solve(
        self, request: ScheduleRequest, *, timeout_s: float | None = None
    ) -> SolveReport:
        """Submit and await in one call; solve failures raise."""
        job = await self.submit(request, timeout_s=timeout_s)
        return await job.report()

    # -- dispatch ----------------------------------------------------------------------

    async def _dispatch_loop(self) -> None:
        assert self._queue is not None and self._sem is not None
        while True:
            # Acquire the worker slot *before* popping, so jobs stay in
            # the queue (and count against its bound) until a worker is
            # genuinely free — total admitted work is exactly
            # ``workers + queue_size``.
            await self._sem.acquire()
            job = await self._queue.get()
            task = asyncio.create_task(self._run_job(job))
            self._tasks.add(task)
            self._job_tasks.add(task)
            task.add_done_callback(self._tasks.discard)
            task.add_done_callback(self._job_tasks.discard)

    async def _run_job(self, job: ServiceJob) -> None:
        assert self._loop is not None and self._sem is not None
        self._solves_started += 1
        try:
            worker_future = self._loop.run_in_executor(
                self._executor, self._worker, job.request
            )
        except Exception as exc:  # executor refused (shutting down, ...)
            self._sem.release()
            self._finish(job, error_outcome(exc, 0.0))
            return
        slot_released = False
        try:
            if job.timeout_s is not None:
                try:
                    outcome = await asyncio.wait_for(
                        asyncio.shield(worker_future), job.timeout_s
                    )
                except asyncio.TimeoutError:
                    # The pool cannot interrupt a running solve; the
                    # zombie keeps its worker slot until it finishes,
                    # then the callback frees it and counts it.
                    self._timeouts += 1
                    slot_released = True
                    worker_future.add_done_callback(self._zombie_done)
                    self._finish(
                        job,
                        SolveOutcome(
                            status="error",
                            report=None,
                            error=(
                                f"TimeoutError: solve exceeded its "
                                f"{job.timeout_s:g} s budget"
                            ),
                            error_type="TimeoutError",
                            elapsed_s=job.timeout_s,
                        ),
                    )
                    return
            else:
                outcome = await worker_future
        except Exception as exc:  # pool failure: broken pool, pickling, ...
            outcome = error_outcome(exc, 0.0)
        finally:
            if not slot_released:
                self._sem.release()
        self._solves_completed += 1
        self._finish(job, outcome)

    def _zombie_done(self, future: "asyncio.Future") -> None:
        assert self._sem is not None
        self._sem.release()
        self._solves_completed += 1
        if not future.cancelled():
            future.exception()  # retrieve, silencing the loop's warning

    def _finish(self, job: ServiceJob, outcome: SolveOutcome) -> None:
        self._inflight.pop(job.key, None)
        if outcome.ok:
            self._completed += 1
            if outcome.cache_hit:
                self._cache_hits += 1
        else:
            self._errors += 1
        if self._archive is not None:
            self._schedule_archive_append(job, outcome)
        if not job.future.done():
            job.future.set_result(outcome)

    def _schedule_archive_append(
        self, job: ServiceJob, outcome: SolveOutcome
    ) -> None:
        """Append to the archive off the event loop.

        Per-record file I/O on the loop thread would stall every
        connection on disk latency; the write runs on the loop's
        default thread pool instead.  The task joins ``self._tasks``
        so a drain flushes the archive before :meth:`stop` returns,
        and a failing disk only bumps a counter — it must not take
        the service down.
        """
        assert self._loop is not None and self._archive is not None

        async def _append() -> None:
            try:
                await self._loop.run_in_executor(
                    None,
                    partial(
                        self._archive.append_outcome,
                        job.request,
                        outcome,
                        request_hash=job.key,
                    ),
                )
            except Exception:
                self._archive_errors += 1

        task = asyncio.create_task(_append())
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)

    # -- metrics -----------------------------------------------------------------------

    def metrics(self) -> ServiceMetrics:
        """A point-in-time operational snapshot."""
        uptime = time.perf_counter() - self._started_at if self._started_at else 0.0
        resolved = self._completed + self._errors
        return ServiceMetrics(
            backend=self._backend.name,
            workers=self._backend.max_workers,
            queue_capacity=self._queue_size,
            queue_depth=self._queue.qsize() if self._queue is not None else 0,
            in_flight=len(self._job_tasks),
            submitted=self._submitted,
            deduped=self._deduped,
            completed=self._completed,
            errors=self._errors,
            timeouts=self._timeouts,
            rejected=self._rejected,
            solves_started=self._solves_started,
            solves_completed=self._solves_completed,
            cache_hits=self._cache_hits,
            uptime_s=uptime,
            requests_per_s=resolved / uptime if uptime > 0.0 else 0.0,
            cache=self._cache.stats if self._cache is not None else None,
        )

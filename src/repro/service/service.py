"""The long-lived asyncio scheduling service.

:class:`ScheduleService` is the queueing heart of ``repro serve``: it
accepts :class:`~repro.api.ScheduleRequest`\\ s on a bounded job queue,
dispatches them to a worker pool built from the batch engine's execution
backends, and resolves each submission's awaitable with a
:class:`~repro.service.execution.SolveOutcome`.

Design points:

* **Bounded queue, explicit backpressure** — :meth:`ScheduleService.submit`
  awaits queue space (a TCP handler that awaits it stops reading its
  socket, pushing the backpressure all the way to the client), while
  :meth:`ScheduleService.submit_nowait` raises
  :class:`~repro.errors.ServiceBusyError` for callers that would rather
  shed load than wait.  An optional ``shed_watermark`` turns *both*
  paths into load-shedders past a queue-depth high-water mark.
* **Answer cache** — resolved answers are kept in a bounded,
  TTL-expiring :class:`~repro.service.answer_cache.AnswerCache` keyed
  by the same content hash as everything else; a hit resolves the
  submission immediately (report flagged ``cached``) without touching
  the queue or a worker, and the cache can warm-start from a
  :class:`~repro.service.archive.ReportArchive` at boot.
* **In-flight deduplication** — submissions are keyed by the request's
  stable :meth:`~repro.api.ScheduleRequest.content_hash`; while a solve
  for a given hash is queued or running, every identical submission
  attaches to the same :class:`ServiceJob` and one worker answers them
  all.  (Waiters share the job's outcome — including its timeout, which
  is fixed by the first submitter.)
* **Adaptive worker pool** — admissions to the executor are gated by an
  :class:`~repro.service.pool.AdaptiveWorkerPool` that scales its
  target between ``min_workers`` and ``max_workers`` with queue
  pressure (one step per observation, idle hysteresis on the way down).
* **Shared thermal models** — thread workers solve against the
  service's :class:`~repro.engine.cache.ThermalModelCache`; process
  workers use the same per-process cache as the batch runner, so a
  service interleaved with batches keeps its factorisations warm.
* **Graceful drain** — :meth:`ScheduleService.stop` (default
  ``drain=True``) stops accepting, lets the queue and every in-flight
  solve finish, resolves all futures, then joins the executor.
"""

from __future__ import annotations

import asyncio
import dataclasses
import time
from dataclasses import dataclass
from functools import partial
from pathlib import Path
from typing import Any

from ..api.request import ScheduleRequest, SolveReport
from ..engine.backends import ExecutionBackend, create_backend
from ..engine.cache import CacheStats, ThermalModelCache, resolve_cache
from ..errors import ServiceBusyError, ServiceClosedError, ServiceError
from .answer_cache import AnswerCache, AnswerCacheStats, warm_cache_from_archive
from .archive import ReportArchive
from .execution import (
    SolveOutcome,
    error_outcome,
    process_solve,
    process_solve_uncached,
    solve_request_outcome,
)
from .pool import AdaptiveWorkerPool


class ServiceJob:
    """One queued or running solve, shared by all of its submitters.

    Attributes
    ----------
    request:
        The deduplicated request being solved.
    key:
        Its content hash (the dedup key).
    timeout_s:
        Effective solve timeout (``None`` = unbounded), fixed by the
        first submitter.
    waiters:
        Submissions that dedup-attached to this job after the first —
        the count of *other* clients whose answers die with it.
    """

    __slots__ = ("request", "key", "timeout_s", "future", "submitted_at", "waiters")

    def __init__(
        self,
        request: ScheduleRequest,
        key: str,
        timeout_s: float | None,
        future: "asyncio.Future[SolveOutcome]",
    ) -> None:
        self.request = request
        self.key = key
        self.timeout_s = timeout_s
        self.future = future
        self.submitted_at = time.perf_counter()
        self.waiters = 0

    @property
    def done(self) -> bool:
        """True once the job's outcome is resolved."""
        return self.future.done()

    async def outcome(self) -> SolveOutcome:
        """Await the job's terminal record (never raises on solve errors).

        The future is shielded: cancelling one waiter does not cancel
        the shared solve the other submitters are still waiting on.
        """
        return await asyncio.shield(self.future)

    async def report(self) -> SolveReport:
        """Await the report; solve failures raise :class:`ServiceError`."""
        outcome = await self.outcome()
        if not outcome.ok:
            raise ServiceError(outcome.error)
        assert outcome.report is not None
        return outcome.report


@dataclass(frozen=True)
class ServiceMetrics:
    """Point-in-time operational snapshot of a :class:`ScheduleService`.

    Attributes
    ----------
    backend, workers, queue_capacity:
        Static configuration (``workers`` is the pool *maximum*).
    min_workers, current_workers:
        Adaptive-pool band floor and current admission target
        (``current_workers == workers`` for a fixed-size pool).
    scale_ups, scale_downs:
        One-step pool scaling decisions taken so far.
    queue_depth:
        Jobs waiting for a worker slot right now.
    in_flight:
        Jobs currently occupying a worker.
    submitted:
        Total submissions accepted (dedup-attached and answer-cache
        hits included).
    answer_hits:
        Submissions answered directly from the answer cache (no queue,
        no worker, report flagged ``cached``).
    deduped:
        Submissions that attached to an already in-flight identical
        request instead of triggering a solve.
    completed, errors, timeouts:
        Jobs resolved ok / with an error outcome / of which timeouts.
    rejected:
        Submissions refused with :class:`~repro.errors.ServiceBusyError`
        (``submit_nowait`` on a full queue, either path past the shed
        watermark, or dedup waiters whose originating submission was
        cancelled while the queue was full).
    shed:
        The subset of ``rejected`` caused by the shed watermark.
    solves_started, solves_completed:
        Worker-pool executions — ``submitted - deduped - answer_hits``
        submissions each start exactly one solve, which is how dedup
        and the answer cache are asserted.
    cache_hits:
        Solves whose thermal model came out of a cache.
    uptime_s, requests_per_s:
        Service age and answered-submissions throughput over it.
        Cache hits and dedup-attached submissions count — every one is
        an answered request (an attached waiter's answer is its shared
        job's, so the gauge runs at most ``in_flight`` ahead of the
        futures actually resolving).
    cache:
        Shared model-cache statistics (``None`` for process workers,
        whose per-process caches are visible only via ``cache_hits``).
    answer_cache:
        Answer-cache statistics (``None`` when the cache is disabled).
    """

    backend: str
    workers: int
    queue_capacity: int
    queue_depth: int
    in_flight: int
    submitted: int
    deduped: int
    completed: int
    errors: int
    timeouts: int
    rejected: int
    solves_started: int
    solves_completed: int
    cache_hits: int
    uptime_s: float
    requests_per_s: float
    cache: CacheStats | None = None
    min_workers: int = 0
    current_workers: int = 0
    scale_ups: int = 0
    scale_downs: int = 0
    shed: int = 0
    answer_hits: int = 0
    answer_cache: AnswerCacheStats | None = None

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready form (the stats wire frame's payload)."""
        data = {
            "backend": self.backend,
            "workers": self.workers,
            "min_workers": self.min_workers,
            "current_workers": self.current_workers,
            "scale_ups": self.scale_ups,
            "scale_downs": self.scale_downs,
            "queue_capacity": self.queue_capacity,
            "queue_depth": self.queue_depth,
            "in_flight": self.in_flight,
            "submitted": self.submitted,
            "answer_hits": self.answer_hits,
            "deduped": self.deduped,
            "completed": self.completed,
            "errors": self.errors,
            "timeouts": self.timeouts,
            "rejected": self.rejected,
            "shed": self.shed,
            "solves_started": self.solves_started,
            "solves_completed": self.solves_completed,
            "cache_hits": self.cache_hits,
            "uptime_s": self.uptime_s,
            "requests_per_s": self.requests_per_s,
        }
        if self.cache is not None:
            data["cache"] = {
                "hits": self.cache.hits,
                "misses": self.cache.misses,
                "entries": self.cache.entries,
                "evictions": self.cache.evictions,
            }
        if self.answer_cache is not None:
            data["answer_cache"] = self.answer_cache.to_dict()
        return data

    @property
    def dedup_rate(self) -> float:
        """Fraction of submissions answered by an in-flight solve."""
        return self.deduped / self.submitted if self.submitted else 0.0

    @property
    def answer_hit_rate(self) -> float:
        """Fraction of submissions answered from the answer cache."""
        return self.answer_hits / self.submitted if self.submitted else 0.0

    def describe(self) -> str:
        """Multi-line human-readable snapshot."""
        if self.min_workers and self.min_workers != self.workers:
            workers = (
                f"{self.current_workers} workers "
                f"[{self.min_workers}..{self.workers}]"
            )
        else:
            workers = f"{self.workers} workers"
        lines = [
            f"schedule service on backend {self.backend!r} "
            f"({workers}, queue {self.queue_depth}/"
            f"{self.queue_capacity}, {self.in_flight} in flight)",
            f"  {self.submitted} submitted ({self.answer_hits} answer-cache "
            f"hits, {self.deduped} deduped, {self.rejected} rejected), "
            f"{self.completed} ok, {self.errors} errors "
            f"({self.timeouts} timeouts)",
            f"  {self.solves_started} solves started / "
            f"{self.solves_completed} completed, {self.cache_hits} model "
            f"cache hits, {self.requests_per_s:.1f} req/s over "
            f"{self.uptime_s:.1f} s",
        ]
        if self.answer_cache is not None:
            lines.append(f"  {self.answer_cache.describe()}")
        if self.cache is not None:
            lines.append(f"  {self.cache.describe()}")
        return "\n".join(lines)


class ScheduleService:
    """Async scheduling service: bounded queue in, worker pool out.

    Parameters
    ----------
    backend:
        Engine backend name (``"thread"``, ``"process"``, ``"serial"``)
        or instance; its :meth:`~repro.engine.backends.ExecutionBackend.create_executor`
        provides the worker pool.
    max_workers:
        Worker-pool maximum (ignored when *backend* is an instance).
    min_workers:
        Adaptive-pool floor; defaults to the maximum (fixed-size pool,
        the pre-adaptive behaviour).  With ``min_workers < max``, the
        admission target scales with queue pressure.
    scale_down_idle_s:
        Continuous quiet time before the pool gives back one worker.
    worker_pool:
        Explicit :class:`~repro.service.pool.AdaptiveWorkerPool`
        (overrides the two knobs above; for tests with injected
        clocks).
    shed_watermark:
        Queue-depth high-water mark past which *both* submit paths
        shed load with :class:`~repro.errors.ServiceBusyError` instead
        of queueing (``None`` = never shed; await-backpressure only).
    cache:
        Thermal-model cache shared by thread/serial workers; pass an
        existing one to share warm models with a
        :class:`~repro.api.Workbench` in the same process.
    use_cache:
        Disable model caching entirely (process workers then skip their
        per-process caches too).
    queue_size:
        Bound of the job queue — the backpressure threshold.
    default_timeout_s:
        Per-solve timeout applied when a submission names none
        (``None`` = unbounded).
    archive:
        A :class:`~repro.service.archive.ReportArchive` (or path) every
        resolved outcome is appended to.
    answer_cache:
        Explicit :class:`~repro.service.answer_cache.AnswerCache`
        (overrides the two knobs below; for tests with injected
        clocks, or to share one cache across services).
    answer_cache_size:
        LRU bound of the default answer cache; ``0`` disables answer
        caching entirely.
    answer_ttl_s:
        TTL of the default answer cache (``None`` = never expires).
    warm_from:
        Service-archive JSONL path whose ``ok`` records pre-populate
        the answer cache at :meth:`start`.
    """

    def __init__(
        self,
        backend: str | ExecutionBackend = "thread",
        max_workers: int | None = None,
        cache: ThermalModelCache | None = None,
        use_cache: bool = True,
        queue_size: int = 128,
        default_timeout_s: float | None = None,
        archive: "ReportArchive | str | Path | None" = None,
        min_workers: int | None = None,
        scale_down_idle_s: float = 2.0,
        worker_pool: AdaptiveWorkerPool | None = None,
        shed_watermark: int | None = None,
        answer_cache: AnswerCache | None = None,
        answer_cache_size: int = 256,
        answer_ttl_s: float | None = 300.0,
        warm_from: "str | Path | None" = None,
    ) -> None:
        if isinstance(backend, ExecutionBackend):
            self._backend = backend
        else:
            self._backend = create_backend(backend, max_workers=max_workers)
        if queue_size < 1:
            raise ServiceError(f"queue_size must be >= 1, got {queue_size!r}")
        if default_timeout_s is not None and default_timeout_s <= 0.0:
            raise ServiceError(
                f"default_timeout_s must be positive, got {default_timeout_s!r}"
            )
        if shed_watermark is not None and not (
            1 <= shed_watermark <= queue_size
        ):
            raise ServiceError(
                f"shed_watermark must be within [1, queue_size={queue_size}], "
                f"got {shed_watermark!r}"
            )
        self._use_cache = use_cache
        self._cache = (
            resolve_cache(cache, use_cache)
            if self._backend.shares_memory
            else None
        )
        self._queue_size = queue_size
        self._default_timeout_s = default_timeout_s
        self._shed_watermark = shed_watermark
        if archive is not None and not isinstance(archive, ReportArchive):
            archive = ReportArchive(archive)
        self._archive = archive
        if worker_pool is not None:
            self._pool = worker_pool
        else:
            self._pool = AdaptiveWorkerPool(
                min_workers=(
                    self._backend.max_workers
                    if min_workers is None
                    else min_workers
                ),
                max_workers=self._backend.max_workers,
                scale_down_idle_s=scale_down_idle_s,
            )
        if self._pool.max_workers > self._backend.max_workers:
            raise ServiceError(
                f"worker pool max ({self._pool.max_workers}) exceeds the "
                f"backend's {self._backend.max_workers} workers"
            )
        if answer_cache_size < 0:
            raise ServiceError(
                f"answer_cache_size must be >= 0 (0 disables), "
                f"got {answer_cache_size!r}"
            )
        if answer_cache is not None:
            self._answer_cache: AnswerCache | None = answer_cache
        elif answer_cache_size > 0:
            self._answer_cache = AnswerCache(
                max_entries=answer_cache_size, ttl_s=answer_ttl_s
            )
        else:
            self._answer_cache = None
        if warm_from is not None and self._answer_cache is None:
            raise ServiceError(
                "warm_from needs the answer cache; do not combine it with "
                "answer_cache_size=0"
            )
        self._warm_from = warm_from
        #: The cache outlives stop(); warm only the first start, or a
        #: restart would re-decode the whole archive, refresh TTLs and
        #: double-count the warmed stat.
        self._warmed_once = False

        self._started = False
        self._accepting = False
        self._loop: asyncio.AbstractEventLoop | None = None
        self._queue: "asyncio.Queue[ServiceJob]" | None = None
        self._executor = None
        self._dispatcher: asyncio.Task | None = None
        self._heartbeat: asyncio.Task | None = None
        #: Everything a drain must wait for: job tasks + archive appends.
        self._tasks: set[asyncio.Task] = set()
        #: Job tasks only — the `in_flight` metric must count jobs
        #: occupying workers, not background archive writes.
        self._job_tasks: set[asyncio.Task] = set()
        self._inflight: dict[str, ServiceJob] = {}
        self._started_at = 0.0

        self._submitted = 0
        self._deduped = 0
        self._completed = 0
        self._errors = 0
        self._timeouts = 0
        self._rejected = 0
        self._shed = 0
        self._answer_hits = 0
        self._solves_started = 0
        self._solves_completed = 0
        self._cache_hits = 0
        self._archive_errors = 0

    # -- properties --------------------------------------------------------------------

    @property
    def backend(self) -> ExecutionBackend:
        """The engine backend providing the worker pool."""
        return self._backend

    @property
    def cache(self) -> ThermalModelCache | None:
        """The shared model cache (``None`` for process workers)."""
        return self._cache

    @property
    def answer_cache(self) -> AnswerCache | None:
        """The TTL answer cache (``None`` when disabled)."""
        return self._answer_cache

    @property
    def worker_pool(self) -> AdaptiveWorkerPool:
        """The adaptive admission gate in front of the executor."""
        return self._pool

    @property
    def archive(self) -> ReportArchive | None:
        """The JSONL archive resolved outcomes are appended to."""
        return self._archive

    @property
    def running(self) -> bool:
        """True between :meth:`start` and :meth:`stop`."""
        return self._started

    # -- lifecycle ---------------------------------------------------------------------

    async def start(self) -> None:
        """Bring up the queue, the dispatcher and the worker pool.

        With ``warm_from`` set, the answer cache is populated from the
        archive first (on an executor thread — decoding revalidates
        every schedule), so the very first request can already hit.
        """
        if self._started:
            raise ServiceError("service is already started")
        self._loop = asyncio.get_running_loop()
        if self._warm_from is not None and not self._warmed_once:
            assert self._answer_cache is not None
            await self._loop.run_in_executor(
                None,
                partial(
                    warm_cache_from_archive, self._answer_cache, self._warm_from
                ),
            )
            self._warmed_once = True
        self._queue = asyncio.Queue(maxsize=self._queue_size)
        self._executor = self._backend.create_executor()
        if self._pool.min_workers < self._pool.max_workers:
            # Submissions/completions stop observing when traffic stops;
            # the heartbeat keeps feeding the pool so the documented
            # idle scale-down happens even on a silent service.
            self._heartbeat = asyncio.create_task(self._scale_heartbeat())
        if self._backend.shares_memory:
            self._worker = partial(solve_request_outcome, cache=self._cache)
        elif self._use_cache:
            self._worker = process_solve
        else:
            self._worker = process_solve_uncached
        self._started_at = time.perf_counter()
        self._dispatcher = asyncio.create_task(self._dispatch_loop())
        self._accepting = True
        self._started = True

    async def stop(self, drain: bool = True) -> None:
        """Shut down; idempotent.

        Parameters
        ----------
        drain:
            ``True`` (default) finishes every queued and in-flight job
            before returning; ``False`` fails queued jobs with
            :class:`~repro.errors.ServiceClosedError` and only waits for
            the solves already on workers (a pool cannot abandon them
            mid-solve without leaking the worker).

        Either way, on return no pending futures remain and the
        executor is joined.
        """
        if not self._started:
            return
        self._accepting = False
        assert self._queue is not None and self._loop is not None
        if drain:
            while self._inflight or not self._queue.empty() or self._tasks:
                await asyncio.sleep(0.01)
        else:
            while not self._queue.empty():
                job = self._queue.get_nowait()
                self._inflight.pop(job.key, None)
                if not job.future.done():
                    job.future.set_exception(
                        ServiceClosedError("service stopped before this job ran")
                    )
            # Finishing jobs may spawn archive-append tasks; loop until
            # genuinely quiet.
            while self._tasks:
                await asyncio.gather(*tuple(self._tasks), return_exceptions=True)
            # A submitter may have been awaiting queue space when we
            # flushed; fail whatever is left unresolved.
            for job in list(self._inflight.values()):
                if not job.future.done():
                    job.future.set_exception(
                        ServiceClosedError("service stopped before this job ran")
                    )
            self._inflight.clear()
        assert self._dispatcher is not None
        self._dispatcher.cancel()
        try:
            await self._dispatcher
        except asyncio.CancelledError:
            pass
        if self._heartbeat is not None:
            self._heartbeat.cancel()
            try:
                await self._heartbeat
            except asyncio.CancelledError:
                pass
            self._heartbeat = None
        # shutdown(wait=True) blocks until zombie (timed-out) solves
        # finish; hop to a helper thread so the loop stays responsive.
        executor = self._executor
        await self._loop.run_in_executor(
            None, partial(executor.shutdown, wait=True)
        )
        self._started = False

    async def __aenter__(self) -> "ScheduleService":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.stop(drain=True)

    # -- submission --------------------------------------------------------------------

    def _cached_job(
        self, request: ScheduleRequest, key: str, outcome: SolveOutcome
    ) -> ServiceJob:
        """A pre-resolved job carrying the answer cache's outcome.

        The stored outcome is re-stamped with ``cached=True`` on every
        hit, so provenance survives the wire and the client can tell a
        memory answer from a fresh solve.
        """
        assert self._loop is not None
        assert outcome.report is not None
        served = dataclasses.replace(
            outcome, report=dataclasses.replace(outcome.report, cached=True)
        )
        job = ServiceJob(request, key, None, self._loop.create_future())
        job.future.set_result(served)
        self._submitted += 1
        self._answer_hits += 1
        return job

    def _prepare(
        self, request: ScheduleRequest, timeout_s: float | None
    ) -> tuple[ServiceJob, bool]:
        if not isinstance(request, ScheduleRequest):
            raise ServiceError(
                f"submit() takes a ScheduleRequest, got {type(request).__name__}"
            )
        if not self._started or not self._accepting:
            raise ServiceClosedError("service is not accepting requests")
        if timeout_s is not None and timeout_s <= 0.0:
            raise ServiceError(f"timeout_s must be positive, got {timeout_s!r}")
        key = request.content_hash()
        # Answer cache first: a stored answer needs no queue slot, no
        # worker and no dedup bookkeeping.  (An expired entry reports a
        # miss and falls through to a fresh solve — never served stale.)
        if self._answer_cache is not None:
            stored = self._answer_cache.get(key)
            if stored is not None:
                return self._cached_job(request, key, stored), False
        existing = self._inflight.get(key)
        if existing is not None:
            self._submitted += 1
            self._deduped += 1
            existing.waiters += 1
            return existing, False
        if (
            self._shed_watermark is not None
            and self._queue is not None
            and self._queue.qsize() >= self._shed_watermark
        ):
            self._rejected += 1
            self._shed += 1
            raise ServiceBusyError(
                f"job queue depth reached the shed watermark "
                f"({self._shed_watermark}); retry later"
            )
        assert self._loop is not None
        job = ServiceJob(
            request,
            key,
            self._default_timeout_s if timeout_s is None else timeout_s,
            self._loop.create_future(),
        )
        self._inflight[key] = job
        self._submitted += 1
        return job, True

    async def submit(
        self, request: ScheduleRequest, *, timeout_s: float | None = None
    ) -> ServiceJob:
        """Enqueue a request, awaiting queue space if the service is full.

        Identical in-flight requests (same content hash) share one
        :class:`ServiceJob`; the returned job may therefore already be
        running — or even already done.
        """
        job, fresh = self._prepare(request, timeout_s)
        if fresh:
            assert self._queue is not None
            try:
                await self._queue.put(job)
                self._pool.observe(self._queue.qsize())
            except asyncio.CancelledError:
                # The caller was cancelled while waiting for queue
                # space.  Other clients may have dedup-attached to this
                # job in the meantime; their answers must not die with
                # the canceller, so if space has freed up the job is
                # queued on their behalf (the cancelled submission
                # stays counted — the solve it owns will happen).
                if (
                    job.waiters
                    and self._accepting
                    and self._inflight.get(job.key) is job
                ):
                    try:
                        self._queue.put_nowait(job)
                    except asyncio.QueueFull:
                        pass
                    else:
                        self._pool.observe(self._queue.qsize())
                        raise
                # Abandoned for real: the job never reached the queue,
                # so it must not linger in the dedup map (later
                # identical requests would attach to a solve that will
                # never run, and drain would wait on it forever), and
                # it must not count as submitted —
                # ``submitted == solves_started + deduped + answer_hits``
                # is the invariant the stats frame advertises.
                self._submitted -= 1
                if job.waiters and self._accepting:
                    # Waiters on a *running* service receive busy
                    # errors ("retry" is honest advice): they move
                    # from the dedup tally to the rejected one, like
                    # any other ServiceBusyError refusal.  On a
                    # stopping service they get ServiceClosedError
                    # below instead — telling them to retry against a
                    # draining service would be a lie, and shutdown
                    # fallout must not pollute the load-shedding gauge.
                    self._submitted -= job.waiters
                    self._deduped -= job.waiters
                    self._rejected += job.waiters
                if self._inflight.get(job.key) is job:
                    del self._inflight[job.key]
                if not job.future.done():
                    job.future.set_exception(
                        ServiceBusyError(
                            "the queue was full and the originating "
                            "submission was cancelled before this request "
                            "could be queued; retry"
                        )
                        if job.waiters and self._accepting
                        else ServiceClosedError(
                            "submission cancelled before it was queued"
                        )
                    )
                    job.future.exception()  # retrieved: no GC warning
                raise
        return job

    def submit_nowait(
        self, request: ScheduleRequest, *, timeout_s: float | None = None
    ) -> ServiceJob:
        """Enqueue a request or raise :class:`ServiceBusyError` if full.

        Dedup-attached submissions never count against the queue bound
        (they occupy no new slot).
        """
        job, fresh = self._prepare(request, timeout_s)
        if fresh:
            assert self._queue is not None
            try:
                self._queue.put_nowait(job)
                self._pool.observe(self._queue.qsize())
            except asyncio.QueueFull:
                self._inflight.pop(job.key, None)
                self._submitted -= 1
                self._rejected += 1
                raise ServiceBusyError(
                    f"job queue is full ({self._queue_size} waiting); "
                    f"retry later or use the awaiting submit path"
                ) from None
        return job

    async def solve(
        self, request: ScheduleRequest, *, timeout_s: float | None = None
    ) -> SolveReport:
        """Submit and await in one call; solve failures raise."""
        job = await self.submit(request, timeout_s=timeout_s)
        return await job.report()

    # -- dispatch ----------------------------------------------------------------------

    async def _dispatch_loop(self) -> None:
        assert self._queue is not None
        while True:
            # Acquire the worker slot *before* popping, so jobs stay in
            # the queue (and count against its bound) until a worker is
            # genuinely free — total admitted work is at most
            # ``max_workers + queue_size``.  While this loop is parked
            # on an empty queue the claimed slot is flagged as idle, so
            # the pool's scaling policy counts it as spare capacity
            # rather than as a busy worker.
            await self._pool.acquire()
            self._pool.mark_idle_claim()
            try:
                job = await self._queue.get()
            except asyncio.CancelledError:
                # stop() cancels this loop while it holds an idle slot;
                # the pool outlives the stop (unlike the per-start
                # queue), so the slot must go back or a later start()
                # would find it permanently leaked.
                self._pool.clear_idle_claim()
                self._pool.release()
                raise
            self._pool.clear_idle_claim()
            task = asyncio.create_task(self._run_job(job))
            self._tasks.add(task)
            self._job_tasks.add(task)
            task.add_done_callback(self._tasks.discard)
            task.add_done_callback(self._job_tasks.discard)

    async def _scale_heartbeat(self) -> None:
        """Periodic pool observation for adaptive bands.

        Half the idle hysteresis per tick: frequent enough that the
        scale-down window is honoured within ~1.5x its nominal value,
        rare enough to be free.
        """
        interval = max(0.05, self._pool.scale_down_idle_s / 2.0)
        while True:
            await asyncio.sleep(interval)
            if self._queue is not None:
                self._pool.observe(self._queue.qsize())

    def _release_slot(self) -> None:
        """Give a worker slot back and feed the pool an observation."""
        self._pool.release()
        if self._queue is not None:
            self._pool.observe(self._queue.qsize())

    async def _run_job(self, job: ServiceJob) -> None:
        assert self._loop is not None
        self._solves_started += 1
        try:
            worker_future = self._loop.run_in_executor(
                self._executor, self._worker, job.request
            )
        except Exception as exc:  # executor refused (shutting down, ...)
            self._release_slot()
            self._finish(job, error_outcome(exc, 0.0))
            return
        slot_released = False
        try:
            if job.timeout_s is not None:
                try:
                    outcome = await asyncio.wait_for(
                        asyncio.shield(worker_future), job.timeout_s
                    )
                except asyncio.TimeoutError:
                    # The pool cannot interrupt a running solve; the
                    # zombie keeps its worker slot until it finishes,
                    # then the callback frees it and counts it.
                    self._timeouts += 1
                    slot_released = True
                    worker_future.add_done_callback(self._zombie_done)
                    self._finish(
                        job,
                        SolveOutcome(
                            status="error",
                            report=None,
                            error=(
                                f"TimeoutError: solve exceeded its "
                                f"{job.timeout_s:g} s budget"
                            ),
                            error_type="TimeoutError",
                            elapsed_s=job.timeout_s,
                        ),
                    )
                    return
            else:
                outcome = await worker_future
        except Exception as exc:  # pool failure: broken pool, pickling, ...
            outcome = error_outcome(exc, 0.0)
        finally:
            if not slot_released:
                self._release_slot()
        self._solves_completed += 1
        self._finish(job, outcome)

    def _zombie_done(self, future: "asyncio.Future") -> None:
        self._release_slot()
        self._solves_completed += 1
        if not future.cancelled():
            future.exception()  # retrieve, silencing the loop's warning

    def _finish(self, job: ServiceJob, outcome: SolveOutcome) -> None:
        self._inflight.pop(job.key, None)
        if outcome.ok:
            self._completed += 1
            if outcome.cache_hit:
                self._cache_hits += 1
            if self._answer_cache is not None:
                self._answer_cache.put(job.key, outcome)
        else:
            self._errors += 1
        if self._archive is not None:
            self._schedule_archive_append(job, outcome)
        if not job.future.done():
            job.future.set_result(outcome)

    def _schedule_archive_append(
        self, job: ServiceJob, outcome: SolveOutcome
    ) -> None:
        """Append to the archive off the event loop.

        Per-record file I/O on the loop thread would stall every
        connection on disk latency; the write runs on the loop's
        default thread pool instead.  The task joins ``self._tasks``
        so a drain flushes the archive before :meth:`stop` returns,
        and a failing disk only bumps a counter — it must not take
        the service down.
        """
        assert self._loop is not None and self._archive is not None

        async def _append() -> None:
            try:
                await self._loop.run_in_executor(
                    None,
                    partial(
                        self._archive.append_outcome,
                        job.request,
                        outcome,
                        request_hash=job.key,
                    ),
                )
            except Exception:
                self._archive_errors += 1

        task = asyncio.create_task(_append())
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)

    # -- metrics -----------------------------------------------------------------------

    def metrics(self) -> ServiceMetrics:
        """A point-in-time operational snapshot.

        When called on the service's event loop it also feeds the
        adaptive pool one load observation, sharpening the idle
        scale-down the background heartbeat already guarantees.  Called
        from any other thread it is a pure read — the pool's waiter
        future is loop-private state a foreign thread must not touch.
        """
        uptime = time.perf_counter() - self._started_at if self._started_at else 0.0
        answered = (
            self._completed + self._errors + self._answer_hits + self._deduped
        )
        queue_depth = self._queue.qsize() if self._queue is not None else 0
        if self._started:
            try:
                on_loop = asyncio.get_running_loop() is self._loop
            except RuntimeError:
                on_loop = False
            if on_loop:
                self._pool.observe(queue_depth)
        return ServiceMetrics(
            backend=self._backend.name,
            workers=self._pool.max_workers,
            min_workers=self._pool.min_workers,
            current_workers=self._pool.current_workers,
            scale_ups=self._pool.scale_ups,
            scale_downs=self._pool.scale_downs,
            queue_capacity=self._queue_size,
            queue_depth=queue_depth,
            in_flight=len(self._job_tasks),
            submitted=self._submitted,
            answer_hits=self._answer_hits,
            deduped=self._deduped,
            completed=self._completed,
            errors=self._errors,
            timeouts=self._timeouts,
            rejected=self._rejected,
            shed=self._shed,
            solves_started=self._solves_started,
            solves_completed=self._solves_completed,
            cache_hits=self._cache_hits,
            uptime_s=uptime,
            requests_per_s=answered / uptime if uptime > 0.0 else 0.0,
            cache=self._cache.stats if self._cache is not None else None,
            answer_cache=(
                self._answer_cache.stats
                if self._answer_cache is not None
                else None
            ),
        )

"""Worker-pool execution path of the scheduling service.

A worker takes one :class:`~repro.api.ScheduleRequest` and returns a
:class:`SolveOutcome` — *always*, never an exception: the pool boundary
is exactly where the batch engine's "failures become records" rule
applies, so one infeasible request cannot poison a worker or lose the
queue position of the requests behind it.

Workers reuse the engine's execution substrate: thread workers share the
service's :class:`~repro.engine.cache.ThermalModelCache`, process
workers use the same per-process cache
(:func:`~repro.engine.cache.process_local_cache`) as the batch runner's
process backend, so warm factorisations survive across clients, bursts
and even interleaved batch runs.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass
from typing import Literal, Sequence

from ..api.request import ScheduleRequest, SolveReport
from ..api.workbench import execute_request, execute_requests_batch
from ..engine.cache import ThermalModelCache, process_local_cache


@dataclass(frozen=True)
class SolveOutcome:
    """The terminal record of one service job (success or failure).

    Attributes
    ----------
    status:
        ``"ok"`` or ``"error"``.
    report:
        The solve report (``None`` on error).
    error:
        ``"ExcType: message"`` failure description (``None`` on
        success).
    error_type:
        Exception class name, so clients can distinguish an infeasible
        request from a timeout without parsing messages.
    elapsed_s:
        Wall-clock time inside the worker (queue wait excluded).
    steady_solves:
        Steady-state solves the job issued (errors included, via the
        effort the exception carried out).
    cache_hit:
        Whether the thermal model came out of a cache.
    """

    status: Literal["ok", "error"]
    report: SolveReport | None
    error: str | None
    error_type: str | None
    elapsed_s: float
    steady_solves: int = 0
    cache_hit: bool = False

    @property
    def ok(self) -> bool:
        """True when the job produced a report."""
        return self.status == "ok"


def error_outcome(exc: BaseException, elapsed_s: float) -> SolveOutcome:
    """Wrap an exception into an error outcome (effort preserved)."""
    return SolveOutcome(
        status="error",
        report=None,
        error=f"{type(exc).__name__}: {exc}",
        error_type=type(exc).__name__,
        elapsed_s=elapsed_s,
        steady_solves=getattr(exc, "solve_steady_solves", 0),
        cache_hit=getattr(exc, "solve_cache_hit", False),
    )


def solve_request_outcome(
    request: ScheduleRequest, cache: ThermalModelCache | None = None
) -> SolveOutcome:
    """Execute one request; failures become error outcomes, not raises."""
    start = time.perf_counter()
    try:
        report = execute_request(request, cache=cache)
    # Catch everything, not just ReproError: a buggy registered solver
    # must not take down a long-lived service worker.
    except Exception as exc:
        return error_outcome(exc, time.perf_counter() - start)
    elapsed_s = time.perf_counter() - start
    # The engine-side wall time used to be discarded on this path; carry
    # it as the "worker" phase so batch and service reports compare.
    report = dataclasses.replace(
        report, timings={**(report.timings or {}), "worker": elapsed_s}
    )
    return SolveOutcome(
        status="ok",
        report=report,
        error=None,
        error_type=None,
        elapsed_s=elapsed_s,
        steady_solves=report.steady_solves,
        cache_hit=report.cache_hit,
    )


def solve_requests_batch(
    requests: Sequence[ScheduleRequest],
    cache: ThermalModelCache | None = None,
) -> list[SolveOutcome]:
    """Execute one coalesced group; one outcome per request, in order.

    Backed by :func:`~repro.api.workbench.execute_requests_batch`:
    every request in the group is evaluated sequentially against
    shared model builds and memoised GEMMs, so the reports are
    bit-identical to solo solves while the group amortises the model
    build and repeated linear algebra.  Per-request failures come back
    as per-request error outcomes — a mid-batch infeasible request
    never poisons its neighbours.
    """
    start = time.perf_counter()
    try:
        results = execute_requests_batch(requests, cache=cache)
    # A failure to even start the batch (a buggy solver's import-time
    # explosion, a broken cache) still must answer every job.
    except Exception as exc:
        elapsed_s = time.perf_counter() - start
        return [error_outcome(exc, elapsed_s) for _ in requests]
    outcomes: list[SolveOutcome] = []
    for item in results:
        if isinstance(item, BaseException):
            outcomes.append(
                error_outcome(item, getattr(item, "solve_elapsed_s", 0.0))
            )
            continue
        # Engine wall time as the "worker" phase, mirroring the solo
        # path (per-request, not the group's wall: phase nesting
        # total <= worker <= service_total must keep holding).
        report = dataclasses.replace(
            item, timings={**(item.timings or {}), "worker": item.elapsed_s}
        )
        outcomes.append(
            SolveOutcome(
                status="ok",
                report=report,
                error=None,
                error_type=None,
                elapsed_s=report.elapsed_s,
                steady_solves=report.steady_solves,
                cache_hit=report.cache_hit,
            )
        )
    return outcomes


def process_solve(request: ScheduleRequest) -> SolveOutcome:
    """Module-level (hence picklable) process-pool worker (cached)."""
    return solve_request_outcome(request, process_local_cache())


def process_solve_uncached(request: ScheduleRequest) -> SolveOutcome:
    """Process-pool worker for ``use_cache=False`` services."""
    return solve_request_outcome(request, None)


def process_solve_batch(
    requests: Sequence[ScheduleRequest],
) -> list[SolveOutcome]:
    """Picklable process-pool batch worker (per-process cache)."""
    return solve_requests_batch(requests, process_local_cache())


def process_solve_batch_uncached(
    requests: Sequence[ScheduleRequest],
) -> list[SolveOutcome]:
    """Process-pool batch worker for ``use_cache=False`` services."""
    return solve_requests_batch(requests, None)

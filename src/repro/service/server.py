"""JSONL-over-TCP front end of the scheduling service.

:class:`ScheduleServer` binds an asyncio stream server and speaks the
:mod:`~repro.service.protocol` frame format: clients pipeline any number
of ``submit`` (plus ``stats``/``ping``) frames over one connection and
receive one response frame per submission, correlated by id, in
completion order.

Backpressure is end-to-end: a submit frame is only acknowledged into the
queue via the service's awaiting submit path, so when the queue is full
the handler stops reading the socket and the client's TCP window fills —
no unbounded buffering anywhere.  Two fast paths never touch the queue:
an answer-cache hit resolves immediately (its report frame carries
``"cached": true``), and a service configured with a shed watermark
answers over-watermark submits with a ``ServiceBusyError`` error frame
instead of queueing them.
"""

from __future__ import annotations

import asyncio

from ..errors import ProtocolError, ReproError, ServiceError
from .fleet.stats import aggregate_fleet_stats
from .protocol import (
    MAX_FRAME_BYTES,
    decode_frame,
    encode_frame,
    error_frame,
    event_frame,
    parse_submit_frame,
    progress_frame,
    report_frame,
)
from .service import ScheduleService, ServiceJob


class ScheduleServer:
    """TCP front end over a :class:`~repro.service.service.ScheduleService`.

    Parameters
    ----------
    service:
        The (already constructed) service; the server starts and stops
        only itself — the service's lifecycle belongs to the caller, so
        one service can sit behind several transports.
    host, port:
        Bind address; ``port=0`` picks a free port (see :attr:`port`).
    """

    def __init__(
        self,
        service: ScheduleService,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self._service = service
        self._host = host
        self._requested_port = port
        self._server: asyncio.base_events.Server | None = None
        self._connections = 0

    @property
    def service(self) -> ScheduleService:
        """The service answering this server's submits."""
        return self._service

    @property
    def port(self) -> int:
        """The actually bound port (meaningful after :meth:`start`)."""
        if self._server is None:
            return self._requested_port
        return self._server.sockets[0].getsockname()[1]

    @property
    def host(self) -> str:
        """The bind host."""
        return self._host

    async def start(self) -> None:
        """Bind and start accepting connections."""
        if self._server is not None:
            raise ProtocolError("server is already started")
        self._server = await asyncio.start_server(
            self._handle_connection,
            self._host,
            self._requested_port,
            limit=MAX_FRAME_BYTES,
        )

    async def serve_forever(self) -> None:
        """Block until cancelled (the CLI's main coroutine)."""
        if self._server is None:
            await self.start()
        assert self._server is not None
        await self._server.serve_forever()

    async def stop(self) -> None:
        """Stop accepting connections (does not stop the service)."""
        if self._server is None:
            return
        self._server.close()
        await self._server.wait_closed()
        self._server = None

    async def __aenter__(self) -> "ScheduleServer":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    # -- per-connection handling -------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._connections += 1
        write_lock = asyncio.Lock()
        pending: set[asyncio.Task] = set()
        try:
            while True:
                try:
                    line = await reader.readline()
                # ValueError is how StreamReader surfaces an oversized
                # line (it converts LimitOverrunError): the frame
                # boundary is lost, so the connection cannot be
                # resynchronised — drop it cleanly.
                except (ConnectionResetError, ValueError):
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                try:
                    await self._handle_frame(line, writer, write_lock, pending)
                except (ConnectionResetError, BrokenPipeError):
                    # The client went away mid-reply (pong/stats/error
                    # frames send synchronously); drop the connection
                    # quietly — submits already admitted keep running.
                    break
        finally:
            # Let in-flight answers finish before closing: a draining
            # client that half-closed its side still wants its reports.
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _handle_frame(
        self,
        line: bytes,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
        pending: set[asyncio.Task],
    ) -> None:
        try:
            frame = decode_frame(line)
        except ProtocolError as exc:
            await self._send(
                writer, write_lock, error_frame(None, str(exc), "ProtocolError")
            )
            return
        frame_id = frame.get("id")
        frame_type = frame["type"]
        if frame_type == "ping":
            await self._send(writer, write_lock, {"type": "pong", "id": frame_id})
        elif frame_type == "stats":
            await self._send(
                writer,
                write_lock,
                {
                    "type": "stats",
                    "id": frame_id,
                    "stats": self._service.metrics().to_dict(),
                },
            )
        elif frame_type == "metrics":
            await self._send(
                writer,
                write_lock,
                {
                    "type": "metrics",
                    "id": frame_id,
                    "text": self._service.metrics_text(),
                },
            )
        elif frame_type == "fleet_stats":
            # A plain server answers as a healthy fleet of one, so a
            # client can ask a shard and a router the same question.
            name = f"{self.host}:{self.port}"
            shard = {
                "name": name,
                "healthy": True,
                "breaker": "closed",
                "probes": 0,
                "probe_failures": 0,
                "last_error": None,
                "stats": self._service.metrics().to_dict(),
            }
            await self._send(
                writer,
                write_lock,
                {
                    "type": "fleet_stats",
                    "id": frame_id,
                    "fleet": aggregate_fleet_stats({name: shard}),
                },
            )
        elif frame_type == "submit":
            await self._handle_submit(frame, frame_id, writer, write_lock, pending)
        else:
            # A client sent a server-side frame type (report/error/...).
            await self._send(
                writer,
                write_lock,
                error_frame(
                    frame_id,
                    f"clients may not send {frame_type!r} frames",
                    "ProtocolError",
                ),
            )

    async def _handle_submit(
        self,
        frame: dict,
        frame_id,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
        pending: set[asyncio.Task],
    ) -> None:
        try:
            request, timeout_s, stream = parse_submit_frame(frame)
        except ProtocolError as exc:
            await self._send(
                writer, write_lock, error_frame(frame_id, str(exc), "ProtocolError")
            )
            return
        try:
            # Awaiting submit is the backpressure point: a full queue
            # pauses this connection's read loop.
            job = await self._service.submit(
                request, timeout_s=timeout_s, stream=stream
            )
        except ReproError as exc:
            await self._send(
                writer,
                write_lock,
                error_frame(
                    frame_id,
                    str(exc),
                    type(exc).__name__,
                    request_hash=request.content_hash(),
                    retryable=getattr(exc, "retryable", None),
                    retry_after_s=getattr(exc, "retry_after_s", None),
                ),
            )
            return
        if stream:
            # Subscribe before the first await: the reactive pump only
            # broadcasts via loop callbacks, so a queue attached here
            # (synchronously after submit returned) misses no event.
            events = job.subscribe()
            task = asyncio.create_task(
                self._stream_when_done(
                    job, events, frame_id, writer, write_lock
                )
            )
        else:
            task = asyncio.create_task(
                self._answer_when_done(job, frame_id, writer, write_lock)
            )
        pending.add(task)
        task.add_done_callback(pending.discard)

    async def _stream_when_done(
        self,
        job: ServiceJob,
        events: "asyncio.Queue[dict | None]",
        frame_id,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
    ) -> None:
        """Answer a streaming submit: push frames, then the terminal one.

        Wire order per watch: ``progress(queued)``, then — once the
        solve resolves ok — ``progress(running)`` and one ``event``
        frame per reactive-timeline event, and finally the ordinary
        report/error frame.  ``seq`` increases by one per push frame,
        so a client can assert it missed nothing.
        """
        seq = 0
        try:
            await self._send(
                writer,
                write_lock,
                progress_frame(
                    frame_id, "queued", seq=seq, request_hash=job.key
                ),
            )
            seq += 1
            try:
                outcome = await job.outcome()
            except ServiceError as exc:
                await self._send(
                    writer,
                    write_lock,
                    error_frame(
                        frame_id,
                        str(exc),
                        type(exc).__name__,
                        request_hash=job.key,
                        retryable=getattr(exc, "retryable", None),
                        retry_after_s=getattr(exc, "retry_after_s", None),
                    ),
                )
                return
            if outcome.ok:
                await self._send(
                    writer,
                    write_lock,
                    progress_frame(
                        frame_id, "running", seq=seq, request_hash=job.key
                    ),
                )
                seq += 1
            # Drain the reactive timeline to its sentinel even on an
            # error outcome — the pump always terminates the queue.
            while True:
                event = await events.get()
                if event is None:
                    break
                await self._send(
                    writer, write_lock, event_frame(frame_id, event, seq=seq)
                )
                seq += 1
            if outcome.ok:
                assert outcome.report is not None
                frame = report_frame(frame_id, outcome.report)
            else:
                frame = error_frame(
                    frame_id,
                    outcome.error or "unknown error",
                    outcome.error_type or "ServiceError",
                    request_hash=job.key,
                )
            await self._send(writer, write_lock, frame)
        except (ConnectionResetError, BrokenPipeError):
            pass  # client went away; the solve (and archive) still count

    async def _answer_when_done(
        self,
        job: ServiceJob,
        frame_id,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
    ) -> None:
        try:
            outcome = await job.outcome()
        # Any ServiceError, not just closed: a dedup-attached job whose
        # originating submission was cancelled resolves its waiters
        # with ServiceBusyError — the client must get an error frame
        # either way, or its submit would wait forever.
        except ServiceError as exc:
            frame = error_frame(
                frame_id,
                str(exc),
                type(exc).__name__,
                request_hash=job.key,
                retryable=getattr(exc, "retryable", None),
                retry_after_s=getattr(exc, "retry_after_s", None),
            )
        else:
            if outcome.ok:
                assert outcome.report is not None
                frame = report_frame(frame_id, outcome.report)
            else:
                frame = error_frame(
                    frame_id,
                    outcome.error or "unknown error",
                    outcome.error_type or "ServiceError",
                    request_hash=job.key,
                )
        try:
            await self._send(writer, write_lock, frame)
        except (ConnectionResetError, BrokenPipeError):
            pass  # client went away; the solve (and archive) still count

    @staticmethod
    async def _send(
        writer: asyncio.StreamWriter, write_lock: asyncio.Lock, frame: dict
    ) -> None:
        async with write_lock:
            writer.write(encode_frame(frame))
            await writer.drain()

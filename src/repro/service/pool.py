"""Adaptive concurrency gate for the scheduling service's worker pool.

The executor behind a :class:`~repro.service.service.ScheduleService`
is created at its *maximum* size, but both pool flavours spawn their
workers lazily — a thread/process only materialises when a job is
actually submitted.  Concurrency is therefore governed here, in front
of the executor: :class:`AdaptiveWorkerPool` admits at most ``target``
jobs at a time and moves ``target`` between a configured ``[min, max]``
band with queue pressure.

Scaling policy (deliberately boring — hysteresis, one step per event):

* **Up** — when an observation sees a backlog larger than the spare
  admission capacity (``target - busy``), ``target`` grows by one
  (until ``max``).  Observations fire on every submission and every
  completion, so a burst ramps one worker per event — fast, but never
  past the backlog.
* **Down** — when observations have seen an empty queue with a spare
  worker for ``scale_down_idle_s`` continuously, ``target`` shrinks by
  one (until ``min``) and the idle timer restarts, so a pool bleeds
  down gradually instead of collapsing on the first quiet moment.
* **Never preemptive** — shrinking below the number of running jobs
  just pauses new admissions until solves finish; a worker is never
  interrupted.

The pool has a single consumer (the service's dispatch loop), which
keeps :meth:`acquire` a one-waiter future instead of a lock dance, and
an injectable clock so the scale-down hysteresis is unit-testable
without sleeping.
"""

from __future__ import annotations

import asyncio
import time
from typing import Callable

from ..errors import ServiceError


class AdaptiveWorkerPool:
    """Semaphore-like gate whose permit count tracks queue pressure.

    Parameters
    ----------
    min_workers, max_workers:
        The band ``target`` moves in; ``min == max`` is a fixed-size
        pool (the pre-adaptive behaviour).
    scale_down_idle_s:
        Continuous quiet time (empty queue, spare worker) before one
        scale-down step.
    clock:
        Monotonic time source; injectable for no-sleep tests.
    """

    def __init__(
        self,
        min_workers: int,
        max_workers: int,
        scale_down_idle_s: float = 2.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if min_workers < 1:
            raise ServiceError(
                f"min_workers must be >= 1, got {min_workers!r}"
            )
        if max_workers < min_workers:
            raise ServiceError(
                f"max_workers ({max_workers!r}) must be >= min_workers "
                f"({min_workers!r})"
            )
        if scale_down_idle_s <= 0.0:
            raise ServiceError(
                f"scale_down_idle_s must be positive, got {scale_down_idle_s!r}"
            )
        self._min = min_workers
        self._max = max_workers
        self._idle_s = scale_down_idle_s
        self._clock = clock
        self._target = min_workers  # guarded-by: event-loop
        self._in_use = 0  # guarded-by: event-loop
        #: True while the consumer holds an acquired slot but is still
        #: waiting for a job to run on it (parked on the queue).  That
        #: slot is *spare* capacity for scaling purposes: a submission
        #: it will pick up immediately must not look like backlog.
        self._idle_claim = False  # guarded-by: event-loop
        self._idle_since: float | None = None  # guarded-by: event-loop
        self._waiter: "asyncio.Future[None] | None" = None  # guarded-by: event-loop
        self._scale_ups = 0  # guarded-by: event-loop
        self._scale_downs = 0  # guarded-by: event-loop

    # -- introspection -----------------------------------------------------------------

    @property
    def min_workers(self) -> int:
        """Lower bound of the worker band."""
        return self._min

    @property
    def max_workers(self) -> int:
        """Upper bound of the worker band."""
        return self._max

    @property
    def scale_down_idle_s(self) -> float:
        """Quiet time required before one shrink step."""
        return self._idle_s

    @property
    def current_workers(self) -> int:
        """The current admission target (``min <= target <= max``)."""
        return self._target

    @property
    def busy_workers(self) -> int:
        """Jobs currently admitted (may transiently exceed a shrunk target)."""
        return self._in_use

    @property
    def scale_ups(self) -> int:
        """Total one-step grow decisions taken."""
        return self._scale_ups

    @property
    def scale_downs(self) -> int:
        """Total one-step shrink decisions taken."""
        return self._scale_downs

    # -- admission ---------------------------------------------------------------------

    async def acquire(self) -> None:
        """Wait until a worker slot is free, then claim it.

        Single-consumer by design: only the service's dispatch loop
        calls this, so one parked future suffices.
        """
        while self._in_use >= self._target:
            if self._waiter is not None:
                raise ServiceError(
                    "AdaptiveWorkerPool.acquire has a single consumer; "
                    "a second concurrent acquire is a bug"
                )
            self._waiter = asyncio.get_running_loop().create_future()
            try:
                await self._waiter
            finally:
                self._waiter = None
        self._in_use += 1

    def release(self) -> None:
        """Return a claimed slot (job finished, or its zombie did)."""
        self._in_use -= 1
        self._wake()

    def mark_idle_claim(self) -> None:
        """The consumer acquired a slot but has no job for it yet."""
        self._idle_claim = True

    def clear_idle_claim(self) -> None:
        """The consumer's claimed slot now carries a job."""
        self._idle_claim = False

    def _wake(self) -> None:
        waiter = self._waiter
        if waiter is not None and not waiter.done():
            waiter.set_result(None)

    # -- scaling -----------------------------------------------------------------------

    def observe(self, queue_depth: int) -> None:
        """Feed one load observation; may take one scaling step.

        The pool itself runs no timer — scaling is a pure function of
        the observed event sequence and the injected clock.  The
        service feeds it observations on every submission, every job
        completion, every metrics snapshot, and (for adaptive bands)
        from a periodic idle heartbeat, so a service that goes quiet
        still bleeds back down to its floor.
        """
        now = self._clock()
        running = self._in_use - (1 if self._idle_claim else 0)
        if queue_depth > 0:
            self._idle_since = None
            spare = self._target - running
            if queue_depth > spare and self._target < self._max:
                self._target += 1
                self._scale_ups += 1
                self._wake()
            return
        if self._target <= self._min or running >= self._target:
            # Nothing to give back (at the floor, or every slot busy).
            self._idle_since = None
            return
        if self._idle_since is None:
            self._idle_since = now
        elif now - self._idle_since >= self._idle_s:
            self._target -= 1
            self._scale_downs += 1
            self._idle_since = now

"""Fault-tolerant sharded fleet: ring, router, health, retry, chaos.

One ``repro serve`` process is a single point of failure.  This package
turns N of them into one logical service:

* :mod:`ring` — :class:`HashRing`, consistent hashing with virtual
  nodes over :meth:`~repro.api.ScheduleRequest.content_hash`, so every
  identical request lands on the same shard and N answer caches dedup
  as one;
* :mod:`router` — :class:`FleetRouter` (``repro route``), the JSONL
  front end that forwards submits to the owning shard, fails over
  along the ring when it is dark, and aggregates fleet-level stats;
* :mod:`health` — :class:`CircuitBreaker` / :class:`ShardHealth`, the
  probe bookkeeping and three-state breaker behind failover decisions;
* :mod:`retry` — :class:`RetryPolicy`, capped exponential backoff with
  full jitter, shared by the router's shard connections and both
  service clients;
* :mod:`stats` — :func:`aggregate_fleet_stats`, the ``fleet_stats``
  frame payload (shared with the plain server, which answers as a
  fleet of one);
* :mod:`faults` — :class:`FaultPlan` / :class:`ChaosProxy`, the seeded
  deterministic fault injector the failover paths are tested with.
"""

from .faults import ChaosProxy, FaultPlan
from .health import BREAKER_STATES, CircuitBreaker, ShardHealth
from .retry import RetryPolicy, is_retryable
from .ring import HashRing, stable_hash
from .router import DEFAULT_ROUTER_PORT, FleetRouter, parse_shard
from .stats import AGGREGATE_COUNTERS, aggregate_fleet_stats

__all__ = [
    "AGGREGATE_COUNTERS",
    "BREAKER_STATES",
    "ChaosProxy",
    "CircuitBreaker",
    "DEFAULT_ROUTER_PORT",
    "FaultPlan",
    "FleetRouter",
    "HashRing",
    "RetryPolicy",
    "ShardHealth",
    "aggregate_fleet_stats",
    "is_retryable",
    "parse_shard",
    "stable_hash",
]

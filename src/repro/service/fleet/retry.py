"""Shared retry policy: capped exponential backoff with full jitter.

One policy object serves every retry loop in the system — the router's
shard connections, :class:`~repro.service.client.AsyncServiceClient`'s
connect/transient-error retry, and the sync wrapper on top of it — so
"how hard do we hammer a struggling shard" is configured in exactly one
place.

Design points:

* **Full jitter** — the delay for attempt *n* is uniform in
  ``[0, min(max_delay, base * multiplier**(n-1))]`` (the AWS
  architecture-blog result): a fleet of clients reconnecting after a
  shard restart spreads out instead of thundering back in lockstep.
* **Server hints win** — a :class:`~repro.errors.ServiceBusyError`
  carrying ``retry_after_s`` knows the queue depth it came from; the
  policy honours the hint (capped at ``max_delay_s``) before falling
  back to its own exponential schedule.
* **Injectable clock, RNG and sleeper** — tests drive the policy with
  a seeded RNG and an instant sleeper, so every backoff sequence is
  deterministic and no test ever really sleeps.
"""

from __future__ import annotations

import asyncio
import random
from typing import Any, Awaitable, Callable

from ...errors import ServiceError


def is_retryable(exc: BaseException) -> bool:
    """Whether retrying after *exc* can succeed.

    Service errors carry an explicit ``retryable`` flag; raw socket
    failures (``OSError`` covers ``ConnectionError``) are retryable by
    nature — the next dial may reach a relaunched server.
    """
    flagged = getattr(exc, "retryable", None)
    if flagged is not None:
        return bool(flagged)
    return isinstance(exc, (OSError, asyncio.TimeoutError))


class RetryPolicy:
    """Capped exponential backoff + full jitter, with injectable time.

    Parameters
    ----------
    max_attempts:
        Total tries including the first (``1`` = never retry).
    base_delay_s:
        Backoff cap before the first retry; doubles (``multiplier``)
        per further attempt.
    max_delay_s:
        Upper bound on any single delay, hinted or computed.
    multiplier:
        Exponential growth factor of the backoff cap.
    rng:
        ``random.Random``-like source of ``random()`` in ``[0, 1)``;
        seed it for deterministic tests.
    sleep:
        Async sleeper; defaults to :func:`asyncio.sleep`.  Tests inject
        an instant (or event-gated) coroutine so no wall time passes.
    """

    def __init__(
        self,
        max_attempts: int = 4,
        base_delay_s: float = 0.05,
        max_delay_s: float = 2.0,
        multiplier: float = 2.0,
        rng: random.Random | None = None,
        sleep: Callable[[float], Awaitable[Any]] | None = None,
    ) -> None:
        if max_attempts < 1:
            raise ServiceError(
                f"max_attempts must be >= 1, got {max_attempts!r}"
            )
        if base_delay_s < 0.0 or max_delay_s < base_delay_s:
            raise ServiceError(
                f"need 0 <= base_delay_s <= max_delay_s, got "
                f"{base_delay_s!r}/{max_delay_s!r}"
            )
        if multiplier < 1.0:
            raise ServiceError(
                f"multiplier must be >= 1, got {multiplier!r}"
            )
        self.max_attempts = max_attempts
        self.base_delay_s = base_delay_s
        self.max_delay_s = max_delay_s
        self.multiplier = multiplier
        self._rng = rng if rng is not None else random.Random()
        self._sleep = sleep if sleep is not None else asyncio.sleep

    def should_retry(self, attempt: int) -> bool:
        """Whether a failed 1-based *attempt* leaves tries in the budget."""
        return attempt < self.max_attempts

    def backoff_s(
        self, attempt: int, retry_after_s: float | None = None
    ) -> float:
        """The delay before retrying after failed 1-based *attempt*.

        A server-provided *retry_after_s* hint is honoured as-is
        (capped at ``max_delay_s``); otherwise full jitter over the
        exponential cap for this attempt.
        """
        if retry_after_s is not None and retry_after_s >= 0.0:
            return min(float(retry_after_s), self.max_delay_s)
        cap = min(
            self.max_delay_s,
            self.base_delay_s * self.multiplier ** (attempt - 1),
        )
        return cap * self._rng.random()

    async def pause(
        self, attempt: int, retry_after_s: float | None = None
    ) -> float:
        """Sleep the backoff for *attempt*; returns the delay used."""
        delay = self.backoff_s(attempt, retry_after_s=retry_after_s)
        await self._sleep(delay)
        return delay

"""The fleet router: one JSONL endpoint in front of N shards.

:class:`FleetRouter` binds the same wire protocol as
:class:`~repro.service.server.ScheduleServer` and makes a fleet of
``repro serve`` shards look like one big service:

* **submit** routes by the request's
  :meth:`~repro.api.ScheduleRequest.content_hash` over the
  :class:`~repro.service.fleet.ring.HashRing` — every identical request
  lands on the same shard, so N private answer caches behave as one
  fleet-wide dedup cache.  When the owner is down (connection refused,
  reset, or its circuit breaker open) the request **fails over** along
  the key's ring preference; only when every shard is dark does the
  client get an honest ``error`` frame with ``retryable: true``.
* **stats** fans out to every reachable shard and answers one summed
  fleet-level payload; **fleet_stats** adds the per-shard breakdown
  and health records; **metrics** renders the router's own telemetry
  (per-shard health/breaker gauges, routing counters) as Prometheus
  text.

Each shard gets one pipelined
:class:`~repro.service.client.AsyncServiceClient` as its connection
pool, carrying the router's shared
:class:`~repro.service.fleet.retry.RetryPolicy` — a transient blip is
retried on the owner before failover steals its cache affinity.  A
background probe loop pings every shard on an injectable schedule and
feeds the per-shard :class:`~repro.service.fleet.health.ShardHealth`,
so a SIGKILLed shard is discovered even while no traffic flows, and a
relaunched one is readmitted through the breaker's half-open probation.
"""

from __future__ import annotations

import asyncio
import time
from typing import Any, Awaitable, Callable, Sequence

from ...errors import (
    ProtocolError,
    ServiceConnectionError,
    ServiceError,
)
from ...obs.prometheus import (
    MetricFamily,
    counter_family,
    gauge_family,
    info_family,
    render_families,
)
from ..client import AsyncServiceClient
from ..protocol import (
    DEFAULT_ROUTER_PORT,
    MAX_FRAME_BYTES,
    decode_frame,
    encode_frame,
    error_frame,
    parse_submit_frame,
)
from .health import ShardHealth
from .retry import RetryPolicy
from .ring import HashRing
from .stats import aggregate_fleet_stats

__all__ = ["DEFAULT_ROUTER_PORT", "FleetRouter", "parse_shard"]

#: Error-frame types from a shard that mean "this shard cannot take the
#: request, another one can" — the router fails over instead of
#: relaying them.  Busy is deliberately absent: a busy shard is *alive*
#: and sheds load by design; bouncing its keys to a neighbour would
#: both dodge the backpressure and scatter its cache affinity.
FAILOVER_ERROR_TYPES = frozenset({"ServiceClosedError"})


def parse_shard(spec: str) -> tuple[str, int]:
    """Split a ``host:port`` shard spec (bare port means localhost)."""
    host, sep, port_text = spec.rpartition(":")
    if not sep:
        host, port_text = "127.0.0.1", spec
    try:
        port = int(port_text)
    except ValueError:
        raise ServiceError(
            f"bad shard spec {spec!r}; expected host:port"
        ) from None
    if not 0 < port < 65536:
        raise ServiceError(f"bad shard port in {spec!r}")
    return host or "127.0.0.1", port


class FleetRouter:
    """Consistent-hash routing front end over a fleet of shards.

    Parameters
    ----------
    shards:
        ``host:port`` specs of the ``repro serve`` processes.
    host, port:
        Front bind address; ``port=0`` picks a free port.
    replicas:
        Virtual-node points per shard on the hash ring.
    retry_policy:
        Shared policy for shard dials and transient-error retries; the
        default retries once, fast — the ring's failover is the real
        redundancy, backoff is for blips.
    probe_interval_s:
        Period of the background ping probe (``None`` disables it;
        tests drive :meth:`probe_once` by hand instead).
    probe_timeout_s:
        Per-probe deadline — a blackholed shard must fail the probe,
        not hang it.
    failure_threshold, cooldown_s, recovery_threshold:
        Per-shard circuit-breaker knobs
        (:class:`~repro.service.fleet.health.CircuitBreaker`).
    clock, sleep:
        Injectable time sources for the breakers and the probe loop.
    """

    def __init__(
        self,
        shards: Sequence[str],
        host: str = "127.0.0.1",
        port: int = 0,
        replicas: int = 128,
        retry_policy: RetryPolicy | None = None,
        probe_interval_s: float | None = 1.0,
        probe_timeout_s: float = 2.0,
        failure_threshold: int = 3,
        cooldown_s: float = 5.0,
        recovery_threshold: int = 2,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], Awaitable[Any]] | None = None,
    ) -> None:
        if not shards:
            raise ServiceError("a fleet needs at least one shard")
        names = [f"{h}:{p}" for h, p in (parse_shard(s) for s in shards)]
        if len(set(names)) != len(names):
            raise ServiceError(f"duplicate shard specs in {list(shards)!r}")
        self._ring = HashRing(names, replicas=replicas)
        self._health = {
            name: ShardHealth(
                name,
                failure_threshold=failure_threshold,
                cooldown_s=cooldown_s,
                recovery_threshold=recovery_threshold,
                clock=clock,
            )
            for name in names
        }
        self._clients: dict[str, AsyncServiceClient] = {}
        self._client_locks = {name: asyncio.Lock() for name in names}
        self._retry_policy = (
            retry_policy
            if retry_policy is not None
            else RetryPolicy(max_attempts=2, base_delay_s=0.05, max_delay_s=0.5)
        )
        if probe_interval_s is not None and probe_interval_s <= 0.0:
            raise ServiceError(
                f"probe_interval_s must be positive, got {probe_interval_s!r}"
            )
        self._probe_interval_s = probe_interval_s
        self._probe_timeout_s = probe_timeout_s
        self._sleep = sleep if sleep is not None else asyncio.sleep
        self._host = host
        self._requested_port = port
        self._server: asyncio.base_events.Server | None = None
        self._probe_task: asyncio.Task | None = None
        self._started_at = 0.0

        self._submits = 0  # guarded-by: event-loop
        self._routed = 0  # guarded-by: event-loop
        self._failovers = 0  # guarded-by: event-loop
        self._relayed_errors = 0  # guarded-by: event-loop
        self._unrouted = 0  # guarded-by: event-loop

    # -- properties --------------------------------------------------------------------

    @property
    def ring(self) -> HashRing:
        """The routing ring (shard names are ``host:port``)."""
        return self._ring

    @property
    def shards(self) -> tuple[str, ...]:
        """Shard names in deterministic order."""
        return tuple(sorted(self._health))

    @property
    def port(self) -> int:
        """The actually bound port (meaningful after :meth:`start`)."""
        if self._server is None:
            return self._requested_port
        return self._server.sockets[0].getsockname()[1]

    @property
    def host(self) -> str:
        """The front bind host."""
        return self._host

    def health(self, shard: str) -> ShardHealth:
        """The health record of *shard* (``host:port``)."""
        return self._health[shard]

    def describe_config(self) -> str:
        """One-line static configuration (the route banner's body)."""
        return (
            f"{len(self._health)} shards ({', '.join(self.shards)}), "
            f"{self._ring.replicas} ring replicas, "
            f"retry x{self._retry_policy.max_attempts}"
        )

    # -- lifecycle ---------------------------------------------------------------------

    async def start(self) -> None:
        """Bind the front port and start the probe loop."""
        if self._server is not None:
            raise ProtocolError("router is already started")
        self._server = await asyncio.start_server(
            self._handle_connection,
            self._host,
            self._requested_port,
            limit=MAX_FRAME_BYTES,
        )
        self._started_at = time.perf_counter()
        if self._probe_interval_s is not None:
            self._probe_task = asyncio.create_task(self._probe_loop())

    async def serve_forever(self) -> None:
        """Block until cancelled (the CLI's main coroutine)."""
        if self._server is None:
            await self.start()
        assert self._server is not None
        await self._server.serve_forever()

    async def stop(self) -> None:
        """Close the front port, the probe loop and every shard client."""
        if self._probe_task is not None:
            self._probe_task.cancel()
            try:
                await self._probe_task
            except asyncio.CancelledError:
                pass
            self._probe_task = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for client in self._clients.values():
            await client.close()
        self._clients.clear()

    async def __aenter__(self) -> "FleetRouter":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    # -- shard connections and probes --------------------------------------------------

    async def _client(self, shard: str) -> AsyncServiceClient:
        """The shard's pooled client, dialled on first use.

        Serialised per shard so concurrent requests share one pipelined
        connection instead of racing to create several.
        """
        async with self._client_locks[shard]:
            client = self._clients.get(shard)
            if client is None:
                host, port = parse_shard(shard)
                client = await AsyncServiceClient.connect(
                    host, port, retry_policy=self._retry_policy
                )
                self._clients[shard] = client
            return client

    async def probe_once(self) -> None:
        """Ping every shard once and record the outcomes.

        Public so tests (and operators) can force a health sweep
        deterministically instead of waiting for the probe period.
        """
        await asyncio.gather(
            *(self._probe_shard(shard) for shard in self._health)
        )

    async def _probe_shard(self, shard: str) -> None:
        health = self._health[shard]
        try:
            client = await self._client(shard)
            await asyncio.wait_for(client.ping(), self._probe_timeout_s)
        except (ServiceError, OSError, asyncio.TimeoutError) as exc:
            health.record_probe(False, f"{type(exc).__name__}: {exc}")
        else:
            health.record_probe(True)

    async def _probe_loop(self) -> None:
        assert self._probe_interval_s is not None
        while True:
            await self._sleep(self._probe_interval_s)
            await self.probe_once()

    # -- per-connection handling -------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        write_lock = asyncio.Lock()
        pending: set[asyncio.Task] = set()
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ConnectionResetError, ValueError):
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                try:
                    await self._handle_frame(line, writer, write_lock, pending)
                except (ConnectionResetError, BrokenPipeError):
                    break
        finally:
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _handle_frame(
        self,
        line: bytes,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
        pending: set[asyncio.Task],
    ) -> None:
        try:
            frame = decode_frame(line)
        except ProtocolError as exc:
            await self._send(
                writer, write_lock, error_frame(None, str(exc), "ProtocolError")
            )
            return
        frame_id = frame.get("id")
        frame_type = frame["type"]
        if frame_type == "ping":
            # The router's own liveness, not a fan-out: a load balancer
            # probing the fleet endpoint asks about *this* process.
            await self._send(writer, write_lock, {"type": "pong", "id": frame_id})
        elif frame_type == "stats":
            task = asyncio.create_task(
                self._answer_stats(frame_id, writer, write_lock)
            )
            pending.add(task)
            task.add_done_callback(pending.discard)
        elif frame_type == "fleet_stats":
            task = asyncio.create_task(
                self._answer_fleet_stats(frame_id, writer, write_lock)
            )
            pending.add(task)
            task.add_done_callback(pending.discard)
        elif frame_type == "metrics":
            await self._send(
                writer,
                write_lock,
                {"type": "metrics", "id": frame_id, "text": self.metrics_text()},
            )
        elif frame_type == "submit":
            await self._handle_submit(frame, frame_id, writer, write_lock, pending)
        else:
            # A client sent a server-side frame type (report/error/...).
            await self._send(
                writer,
                write_lock,
                error_frame(
                    frame_id,
                    f"clients may not send {frame_type!r} frames",
                    "ProtocolError",
                ),
            )

    # -- submit routing ----------------------------------------------------------------

    async def _handle_submit(
        self,
        frame: dict,
        frame_id,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
        pending: set[asyncio.Task],
    ) -> None:
        try:
            request, timeout_s, stream = parse_submit_frame(frame)
        except ProtocolError as exc:
            await self._send(
                writer, write_lock, error_frame(frame_id, str(exc), "ProtocolError")
            )
            return
        # One task per submit: the shard roundtrip must not stall this
        # connection's read loop, or pipelining dies at the router.
        task = asyncio.create_task(
            self._route_submit(
                request, timeout_s, stream, frame_id, writer, write_lock
            )
        )
        pending.add(task)
        task.add_done_callback(pending.discard)

    async def _route_submit(
        self,
        request,
        timeout_s: float | None,
        stream: bool,
        frame_id,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
    ) -> None:
        self._submits += 1
        key = request.content_hash()
        attempts: list[str] = []
        for position, shard in enumerate(self._ring.preference(key)):
            health = self._health[shard]
            if not health.breaker.allows():
                attempts.append(f"{shard}: circuit breaker open")
                continue
            if position:
                # Any attempt past ring position 0 moved off the owner —
                # whether the owner failed when tried or was skipped
                # outright by its open breaker.
                self._failovers += 1
            try:
                client = await self._client(shard)
            except (ServiceConnectionError, OSError) as exc:
                health.record_failure(str(exc))
                attempts.append(f"{shard}: {exc}")
                continue
            if stream:
                status, detail = await self._relay_watch(
                    client, request, timeout_s, frame_id, writer, write_lock
                )
                if status == "failover":
                    health.record_failure(detail)
                    attempts.append(f"{shard}: {detail}")
                    continue
                if status == "lost":
                    # Push frames already reached the client; failing
                    # over would replay the timeline from scratch, so
                    # the watch ended with an error frame instead.
                    health.record_failure(detail)
                    self._routed += 1
                    self._relayed_errors += 1
                    return
                health.record_success()
                self._routed += 1
                if status == "relayed_error":
                    self._relayed_errors += 1
                return
            try:
                response = await client.submit_raw(request, timeout_s=timeout_s)
            except (ServiceConnectionError, OSError) as exc:
                health.record_failure(str(exc))
                attempts.append(f"{shard}: {exc}")
                continue
            if (
                response.get("type") == "error"
                and response.get("error_type") in FAILOVER_ERROR_TYPES
            ):
                # The shard answered, but is draining: alive enough to
                # talk, not alive enough to take keys.
                health.record_failure(
                    f"{response.get('error_type')}: {response.get('error')}"
                )
                attempts.append(f"{shard}: {response.get('error')}")
                continue
            health.record_success()
            self._routed += 1
            if response.get("type") == "error":
                self._relayed_errors += 1
            relayed = dict(response)
            relayed["id"] = frame_id
            try:
                await self._send(writer, write_lock, relayed)
            except (ConnectionResetError, BrokenPipeError):
                pass  # client went away; the shard's solve still counts
            return
        # Whole ring dark (or every reachable shard draining).
        self._unrouted += 1
        detail = "; ".join(attempts) if attempts else "no shards tried"
        try:
            await self._send(
                writer,
                write_lock,
                error_frame(
                    frame_id,
                    f"no healthy shard for this request "
                    f"({len(self._health)} in ring): {detail}",
                    "ServiceConnectionError",
                    request_hash=key,
                    retryable=True,
                ),
            )
        except (ConnectionResetError, BrokenPipeError):
            pass

    async def _relay_watch(
        self,
        client: AsyncServiceClient,
        request,
        timeout_s: float | None,
        frame_id,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
    ) -> tuple[str, str]:
        """Relay one shard watch to the front client, id rewritten.

        Returns ``(status, detail)``:

        * ``("failover", why)`` — the shard refused before any frame
          was relayed; the ring may still try the next shard.
        * ``("lost", why)`` — the shard connection died mid-stream;
          an error frame already ended the client's watch (replaying
          the timeline on another shard is the *client's* choice).
        * ``("relayed_error", "")`` / ``("done", "")`` — a terminal
          error/report frame was relayed; the watch is over.
        """
        relayed_any = False
        status = "done"
        try:
            async for shard_frame in client.watch(
                request, timeout_s=timeout_s
            ):
                shard_type = shard_frame.get("type")
                if shard_type == "error":
                    if (
                        not relayed_any
                        and shard_frame.get("error_type")
                        in FAILOVER_ERROR_TYPES
                    ):
                        return (
                            "failover",
                            f"{shard_frame.get('error_type')}: "
                            f"{shard_frame.get('error')}",
                        )
                    status = "relayed_error"
                relayed = dict(shard_frame)
                relayed["id"] = frame_id
                try:
                    await self._send(writer, write_lock, relayed)
                except (ConnectionResetError, BrokenPipeError):
                    # Front client went away; the shard's solve (and
                    # its archive record) still count.
                    return "done", ""
                relayed_any = True
        except (ServiceConnectionError, OSError) as exc:
            if not relayed_any:
                return "failover", str(exc)
            try:
                await self._send(
                    writer,
                    write_lock,
                    error_frame(
                        frame_id,
                        f"shard connection lost mid-watch: {exc}",
                        "ServiceConnectionError",
                        request_hash=request.content_hash(),
                        retryable=True,
                    ),
                )
            except (ConnectionResetError, BrokenPipeError):
                pass
            return "lost", str(exc)
        return status, ""

    # -- stats fan-out -----------------------------------------------------------------

    async def _shard_stats(self, shard: str) -> "dict[str, Any] | None":
        """One shard's stats payload, or ``None`` when unreachable."""
        health = self._health[shard]
        if not health.breaker.allows():
            return None
        try:
            client = await self._client(shard)
            stats = await asyncio.wait_for(
                client.stats(), self._probe_timeout_s
            )
        except (ServiceError, OSError, asyncio.TimeoutError) as exc:
            health.record_failure(f"{type(exc).__name__}: {exc}")
            return None
        health.record_success()
        return stats

    async def fleet_stats(self) -> dict[str, Any]:
        """The ``fleet`` payload: per-shard health+stats and aggregate."""
        names = self.shards
        all_stats = await asyncio.gather(
            *(self._shard_stats(name) for name in names)
        )
        shards = {}
        for name, stats in zip(names, all_stats):
            entry = self._health[name].to_dict()
            entry["stats"] = stats
            shards[name] = entry
        return aggregate_fleet_stats(shards, router=self.router_counters())

    def router_counters(self) -> dict[str, Any]:
        """The router's own counters (part of the fleet payload)."""
        uptime = (
            time.perf_counter() - self._started_at if self._started_at else 0.0
        )
        return {
            "submits": self._submits,
            "routed": self._routed,
            "failovers": self._failovers,
            "relayed_errors": self._relayed_errors,
            "unrouted": self._unrouted,
            "uptime_s": uptime,
        }

    async def _answer_stats(
        self, frame_id, writer: asyncio.StreamWriter, write_lock: asyncio.Lock
    ) -> None:
        fleet = await self.fleet_stats()
        payload = dict(fleet["aggregate"])
        payload["backend"] = "fleet"
        payload["shard_count"] = fleet["shard_count"]
        payload["healthy_shards"] = fleet["healthy_shards"]
        try:
            await self._send(
                writer,
                write_lock,
                {"type": "stats", "id": frame_id, "stats": payload},
            )
        except (ConnectionResetError, BrokenPipeError):
            pass

    async def _answer_fleet_stats(
        self, frame_id, writer: asyncio.StreamWriter, write_lock: asyncio.Lock
    ) -> None:
        fleet = await self.fleet_stats()
        try:
            await self._send(
                writer,
                write_lock,
                {"type": "fleet_stats", "id": frame_id, "fleet": fleet},
            )
        except (ConnectionResetError, BrokenPipeError):
            pass

    # -- router telemetry --------------------------------------------------------------

    def metrics_text(self) -> str:
        """The router's own telemetry as Prometheus text exposition."""
        counters = self.router_counters()
        families = [
            info_family(
                "repro_router",
                "Fleet router configuration.",
                {"shards": str(len(self._health))},
            ),
            counter_family(
                "repro_router_submits",
                "Submit frames accepted by the router.",
                counters["submits"],
            ),
            counter_family(
                "repro_router_routed",
                "Submits answered by a shard (reports and relayed errors).",
                counters["routed"],
            ),
            counter_family(
                "repro_router_failovers",
                "Times a submit moved past its owning shard on the ring.",
                counters["failovers"],
            ),
            counter_family(
                "repro_router_relayed_errors",
                "Shard error frames relayed to clients verbatim.",
                counters["relayed_errors"],
            ),
            counter_family(
                "repro_router_unrouted",
                "Submits refused because every shard was dark.",
                counters["unrouted"],
            ),
            gauge_family(
                "repro_router_uptime_s",
                "Seconds since the router started.",
                counters["uptime_s"],
            ),
        ]
        health = [self._health[name] for name in self.shards]
        families.append(
            MetricFamily(
                "repro_shard_healthy",
                "gauge",
                "Whether the router would currently route to the shard.",
                tuple(
                    ("", {"shard": h.name}, 1.0 if h.healthy else 0.0)
                    for h in health
                ),
            )
        )
        families.append(
            MetricFamily(
                "repro_shard_breaker_open",
                "gauge",
                "Whether the shard's circuit breaker is open.",
                tuple(
                    ("", {"shard": h.name}, 1.0 if h.breaker.state == "open" else 0.0)
                    for h in health
                ),
            )
        )
        families.append(
            MetricFamily(
                "repro_shard_probe_failures_total",
                "counter",
                "Failed ping probes per shard.",
                tuple(
                    ("", {"shard": h.name}, float(h.probe_failures))
                    for h in health
                ),
            )
        )
        return render_families(families)

    @staticmethod
    async def _send(
        writer: asyncio.StreamWriter, write_lock: asyncio.Lock, frame: dict
    ) -> None:
        async with write_lock:
            writer.write(encode_frame(frame))
            await writer.drain()

"""Fleet-level stats aggregation (the ``fleet_stats`` frame payload).

Shared by the router (N shards) and the plain server (a fleet of one),
so a client can ask either endpoint the same question and read the
answer with the same code.  Lives in its own module — the server
imports it and the router imports it, and it imports neither.
"""

from __future__ import annotations

from typing import Any, Mapping

#: Stats-frame scalars that sum meaningfully across shards.  A subset
#: of :data:`repro.service.service.METRIC_FIELDS` — per-shard gauges
#: like ``workers`` or ``queue_capacity`` describe one process and are
#: left to the per-shard breakdown.
AGGREGATE_COUNTERS = (
    "queue_depth",
    "in_flight",
    "submitted",
    "answer_hits",
    "deduped",
    "completed",
    "errors",
    "timeouts",
    "rejected",
    "shed",
    "solves_started",
    "solves_completed",
    "cache_hits",
)


def aggregate_fleet_stats(
    shards: Mapping[str, Mapping[str, Any]],
    router: Mapping[str, Any] | None = None,
) -> dict[str, Any]:
    """The ``fleet`` payload of a ``fleet_stats`` frame.

    Parameters
    ----------
    shards:
        Per-shard entries, each a
        :meth:`~repro.service.fleet.health.ShardHealth.to_dict`-shaped
        dict plus an optional ``"stats"`` key holding that shard's
        stats-frame payload (``None`` when the shard is unreachable).
    router:
        The router's own counters (``None`` when a plain server answers
        as a fleet of one).

    Returns the per-shard breakdown plus an ``aggregate`` summing the
    shared counters, with ``uptime_s`` as the oldest shard's uptime and
    ``requests_per_s`` as the sum of per-shard throughputs.
    """
    aggregate: dict[str, Any] = {name: 0 for name in AGGREGATE_COUNTERS}
    uptime_s = 0.0
    requests_per_s = 0.0
    healthy = 0
    for shard in shards.values():
        if shard.get("healthy"):
            healthy += 1
        stats = shard.get("stats")
        if not stats:
            continue
        for counter in AGGREGATE_COUNTERS:
            aggregate[counter] += int(stats.get(counter, 0))
        uptime_s = max(uptime_s, float(stats.get("uptime_s", 0.0)))
        requests_per_s += float(stats.get("requests_per_s", 0.0))
    aggregate["uptime_s"] = uptime_s
    aggregate["requests_per_s"] = requests_per_s
    fleet: dict[str, Any] = {
        "shard_count": len(shards),
        "healthy_shards": healthy,
        "shards": {name: dict(shard) for name, shard in shards.items()},
        "aggregate": aggregate,
    }
    if router is not None:
        fleet["router"] = dict(router)
    return fleet

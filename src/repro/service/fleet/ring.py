"""Consistent-hash ring over request content hashes.

The fleet's sharding key is :meth:`~repro.api.ScheduleRequest.content_hash`:
schedules are deterministic per request, so routing every identical
question to the same shard turns N private answer caches into one
fleet-wide dedup cache.  :class:`HashRing` maps those keys to shard
names with the classic consistent-hashing construction — each node owns
``replicas`` pseudo-random points on a 64-bit circle, a key belongs to
the first node point at or after its own hash — which gives the two
properties the router needs:

* **balance** — with enough virtual nodes the keyspace splits close to
  evenly (property-tested, not hoped for);
* **minimal remap on membership change** — removing a node only moves
  the keys it owned, adding a node only steals keys for itself; every
  other key keeps its shard (and therefore its warm answer cache).

Hashing uses SHA-256, never Python's ``hash()``: placement must be
identical across processes, interpreter restarts and
``PYTHONHASHSEED`` values, or a router restart would scramble the
fleet's cache affinity.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Iterator, Sequence

from ...errors import ServiceError


def stable_hash(data: str) -> int:
    """A process-independent 64-bit hash of *data* (first SHA-256 bytes)."""
    digest = hashlib.sha256(data.encode()).digest()
    return int.from_bytes(digest[:8], "big")


class HashRing:
    """Consistent hashing with virtual nodes.

    Parameters
    ----------
    nodes:
        Initial node names (shard addresses, typically ``host:port``).
    replicas:
        Virtual-node points per node.  More points mean better balance
        at the cost of a larger (still tiny) sorted array; 128 keeps
        the per-node load within a few tens of percent of fair for
        small fleets.
    """

    def __init__(self, nodes: Sequence[str] = (), replicas: int = 128) -> None:
        if replicas < 1:
            raise ServiceError(f"replicas must be >= 1, got {replicas!r}")
        self._replicas = replicas
        self._nodes: set[str] = set()
        self._points: list[int] = []  # sorted virtual-node positions
        self._owners: dict[int, str] = {}  # position -> node name
        for node in nodes:
            self.add_node(node)

    @property
    def replicas(self) -> int:
        """Virtual-node points per node."""
        return self._replicas

    @property
    def nodes(self) -> frozenset[str]:
        """Current member names."""
        return frozenset(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    def _node_points(self, node: str) -> Iterator[int]:
        for replica in range(self._replicas):
            yield stable_hash(f"{node}#{replica}")

    def add_node(self, node: str) -> None:
        """Add *node*; keys it now owns move to it, no other key moves."""
        if not node:
            raise ServiceError("ring node name must be non-empty")
        if node in self._nodes:
            raise ServiceError(f"ring already contains node {node!r}")
        self._nodes.add(node)
        for point in self._node_points(node):
            if point in self._owners:
                # A 64-bit collision between two nodes' points: keep the
                # lexicographically smaller owner so placement stays
                # deterministic regardless of insertion order.
                if node < self._owners[point]:
                    self._owners[point] = node
                continue
            self._owners[point] = node
            bisect.insort(self._points, point)

    def remove_node(self, node: str) -> None:
        """Remove *node*; only the keys it owned are remapped."""
        if node not in self._nodes:
            raise ServiceError(f"ring does not contain node {node!r}")
        self._nodes.discard(node)
        for point in self._node_points(node):
            if self._owners.get(point) != node:
                continue  # collision point kept by the other owner
            del self._owners[point]
            index = bisect.bisect_left(self._points, point)
            if index < len(self._points) and self._points[index] == point:
                del self._points[index]

    def owner(self, key: str) -> str:
        """The node owning *key* (the first preference)."""
        return next(self.preference(key))

    def preference(self, key: str) -> Iterator[str]:
        """Every node in failover order for *key*, each exactly once.

        The owner first, then the distinct nodes met walking the ring
        clockwise — the order the router tries shards in when the owner
        is down or its breaker is open.  Deterministic per key, and a
        stable function of the membership: two routers with the same
        shard list compute the same order.
        """
        if not self._points:
            raise ServiceError("hash ring is empty (no nodes)")
        start = bisect.bisect_right(self._points, stable_hash(key))
        seen: set[str] = set()
        for offset in range(len(self._points)):
            point = self._points[(start + offset) % len(self._points)]
            node = self._owners[point]
            if node not in seen:
                seen.add(node)
                yield node

    def load_counts(self, keys: Sequence[str]) -> dict[str, int]:
        """Keys-per-node tally for *keys* (balance introspection/tests)."""
        counts = {node: 0 for node in self._nodes}
        for key in keys:
            counts[self.owner(key)] += 1
        return counts

"""Per-shard health tracking: circuit breaker + probe bookkeeping.

The router owns one :class:`ShardHealth` per shard.  Every interaction
with the shard — a periodic ping probe or a real forwarded request —
reports its outcome here; the embedded :class:`CircuitBreaker` turns
the raw outcome stream into a routing decision (``allows()``) with the
classic three-state machine:

``closed``
    Normal operation.  ``failure_threshold`` *consecutive* failures
    trip the breaker open.
``open``
    The shard is skipped entirely (failover targets get its keys).
    After ``cooldown_s`` the breaker lets a single trial request
    through (``half_open``).
``half_open``
    Probation: ``recovery_threshold`` consecutive successes close the
    breaker, any failure re-opens it and restarts the cooldown.

Time is injectable (``clock``), so tests step through open→half-open
transitions without sleeping.
"""

from __future__ import annotations

import time
from typing import Callable

from ...errors import ServiceError

#: Breaker states, in no particular order (documented above).
BREAKER_STATES = ("closed", "open", "half_open")


class CircuitBreaker:
    """Consecutive-failure circuit breaker with an injectable clock."""

    def __init__(
        self,
        failure_threshold: int = 3,
        cooldown_s: float = 5.0,
        recovery_threshold: int = 2,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1 or recovery_threshold < 1:
            raise ServiceError(
                f"breaker thresholds must be >= 1, got "
                f"{failure_threshold!r}/{recovery_threshold!r}"
            )
        if cooldown_s < 0.0:
            raise ServiceError(f"cooldown_s must be >= 0, got {cooldown_s!r}")
        self.failure_threshold = failure_threshold
        self.cooldown_s = cooldown_s
        self.recovery_threshold = recovery_threshold
        self._clock = clock
        self._state = "closed"
        self._consecutive_failures = 0
        self._consecutive_successes = 0
        self._opened_at = 0.0

    @property
    def state(self) -> str:
        """Current state; reading it performs the open→half_open check."""
        if (
            self._state == "open"
            and self._clock() - self._opened_at >= self.cooldown_s
        ):
            self._state = "half_open"
            self._consecutive_successes = 0
        return self._state

    def allows(self) -> bool:
        """Whether a request may be sent to the guarded shard now."""
        return self.state != "open"

    def record_success(self) -> None:
        """Note a successful interaction with the shard."""
        state = self.state
        self._consecutive_failures = 0
        if state == "half_open":
            self._consecutive_successes += 1
            if self._consecutive_successes >= self.recovery_threshold:
                self._state = "closed"
        elif state == "open":
            # A success while open can only come from a request that was
            # in flight when the breaker tripped; it is evidence the
            # shard lives, so move straight to probation.
            self._state = "half_open"
            self._consecutive_successes = 1
            if self._consecutive_successes >= self.recovery_threshold:
                self._state = "closed"

    def record_failure(self) -> None:
        """Note a failed interaction with the shard."""
        state = self.state
        self._consecutive_successes = 0
        if state == "half_open":
            self._state = "open"
            self._opened_at = self._clock()
            self._consecutive_failures = self.failure_threshold
            return
        self._consecutive_failures += 1
        if (
            state == "closed"
            and self._consecutive_failures >= self.failure_threshold
        ):
            self._state = "open"
            self._opened_at = self._clock()


class ShardHealth:
    """One shard's health record as the router sees it.

    Combines the breaker with probe counters and the last-error string
    so ``fleet_stats`` can explain *why* a shard is unhealthy, not just
    that it is.
    """

    def __init__(
        self,
        name: str,
        failure_threshold: int = 3,
        cooldown_s: float = 5.0,
        recovery_threshold: int = 2,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.name = name
        self.breaker = CircuitBreaker(
            failure_threshold=failure_threshold,
            cooldown_s=cooldown_s,
            recovery_threshold=recovery_threshold,
            clock=clock,
        )
        self.probes = 0
        self.probe_failures = 0
        self.last_error: str | None = None

    @property
    def healthy(self) -> bool:
        """Whether the router would currently route to this shard."""
        return self.breaker.allows()

    def record_success(self) -> None:
        """A probe or forwarded request reached the shard and answered."""
        self.breaker.record_success()
        if self.breaker.state == "closed":
            self.last_error = None

    def record_failure(self, error: str) -> None:
        """A probe or forwarded request failed; *error* says how."""
        self.last_error = error
        self.breaker.record_failure()

    def record_probe(self, ok: bool, error: str | None = None) -> None:
        """Outcome of one periodic ping probe."""
        self.probes += 1
        if ok:
            self.record_success()
        else:
            self.probe_failures += 1
            self.record_failure(error or "ping probe failed")

    def to_dict(self) -> dict:
        """JSON-friendly snapshot for the ``fleet_stats`` frame."""
        return {
            "name": self.name,
            "healthy": self.healthy,
            "breaker": self.breaker.state,
            "probes": self.probes,
            "probe_failures": self.probe_failures,
            "last_error": self.last_error,
        }

"""Deterministic fault injection: a seeded chaos TCP proxy.

:class:`ChaosProxy` sits between a client and a server (or between the
router and a shard) and injures the byte stream on purpose, under a
seeded :class:`FaultPlan`:

* **drop** — swallow a whole frame (the response never arrives);
* **delay** — hold a frame for ``delay_s`` before forwarding;
* **close mid-frame** — forward a prefix of a frame, then abort both
  sides (the victim sees a torn line and a reset, exactly like a
  SIGKILLed server);
* **blackhole** — accept the connection, forward nothing, answer
  nothing (the pathological hang case timeouts must beat).

Determinism is the whole point: faults fire from ``random.Random(seed)``
in stream order, and delays go through an injectable async sleeper, so
a chaos test replays identically on every run and never really sleeps.
The proxy's *front* port is stable across backend restarts — tests
point a client at the proxy once, then :meth:`~ChaosProxy.retarget` it
at a relaunched backend on a new port, or :meth:`~ChaosProxy.sever`
every live pipe to simulate the kill itself.
"""

from __future__ import annotations

import asyncio
import random
from dataclasses import dataclass
from typing import Any, Awaitable, Callable

from ...errors import ServiceError


@dataclass(frozen=True)
class FaultPlan:
    """Seeded fault probabilities for one :class:`ChaosProxy`.

    Rates are per *forwarded frame* (server-to-client direction, where
    answers live), drawn in order from one ``random.Random(seed)``;
    ``close_rate`` is checked first, then ``drop_frame_rate``, then
    ``delay_rate``, all from a single draw per frame.
    """

    seed: int = 0
    drop_frame_rate: float = 0.0
    close_rate: float = 0.0
    delay_rate: float = 0.0
    delay_s: float = 0.05
    blackhole: bool = False

    def __post_init__(self) -> None:
        for name in ("drop_frame_rate", "close_rate", "delay_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ServiceError(
                    f"{name} must be within [0, 1], got {rate!r}"
                )
        if self.close_rate + self.drop_frame_rate + self.delay_rate > 1.0:
            raise ServiceError(
                "fault rates sum past 1.0; they are slices of one draw"
            )
        if self.delay_s < 0.0:
            raise ServiceError(f"delay_s must be >= 0, got {self.delay_s!r}")


class ChaosProxy:
    """A retargetable TCP proxy that injects :class:`FaultPlan` faults.

    Parameters
    ----------
    backend_host, backend_port:
        Where new connections are forwarded (changeable with
        :meth:`retarget` after a backend restart).
    plan:
        The seeded fault plan; the default plan injects nothing (a
        transparent proxy, useful as the severable link itself).
    host, port:
        Front bind address; ``port=0`` picks a free port.
    sleep:
        Async sleeper for delay faults; tests inject an instant one.
    """

    def __init__(
        self,
        backend_host: str,
        backend_port: int,
        plan: FaultPlan | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        sleep: Callable[[float], Awaitable[Any]] | None = None,
    ) -> None:
        self._backend_host = backend_host
        self._backend_port = backend_port
        self.plan = plan if plan is not None else FaultPlan()
        self._host = host
        self._requested_port = port
        self._sleep = sleep if sleep is not None else asyncio.sleep
        self._rng = random.Random(self.plan.seed)
        self._server: asyncio.base_events.Server | None = None
        self._writers: set[asyncio.StreamWriter] = set()
        self._pumps: set[asyncio.Task] = set()
        # Observed fault tallies, for test assertions.
        self.frames_forwarded = 0
        self.frames_dropped = 0
        self.frames_delayed = 0
        self.closes_injected = 0
        self.connections = 0

    @property
    def port(self) -> int:
        """The front port clients dial (after :meth:`start`)."""
        if self._server is None:
            return self._requested_port
        return self._server.sockets[0].getsockname()[1]

    @property
    def host(self) -> str:
        """The front bind host."""
        return self._host

    @property
    def backend(self) -> tuple[str, int]:
        """Where new connections currently forward to."""
        return self._backend_host, self._backend_port

    async def start(self) -> None:
        """Bind the front port and start proxying."""
        if self._server is not None:
            raise ServiceError("chaos proxy is already started")
        self._server = await asyncio.start_server(
            self._handle, self._host, self._requested_port
        )

    async def stop(self) -> None:
        """Sever everything and close the front port."""
        if self._server is None:
            return
        self._server.close()
        await self._server.wait_closed()
        self._server = None
        self.sever()
        if self._pumps:
            await asyncio.gather(*tuple(self._pumps), return_exceptions=True)

    async def __aenter__(self) -> "ChaosProxy":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    def retarget(self, host: str, port: int) -> None:
        """Point *new* connections at a different backend.

        Existing pipes keep flowing to the old one — combine with
        :meth:`sever` to model a restart on a new port.
        """
        self._backend_host = host
        self._backend_port = port

    def sever(self) -> None:
        """Abort every live pipe (both sides), like a yanked cable.

        Victims see a connection reset with no error frame — the same
        signature as a SIGKILLed server.
        """
        for writer in tuple(self._writers):
            transport = writer.transport
            if transport is not None:
                transport.abort()
        self._writers.clear()

    # -- internals ---------------------------------------------------------------------

    async def _handle(
        self, client_reader: asyncio.StreamReader, client_writer: asyncio.StreamWriter
    ) -> None:
        self.connections += 1
        self._writers.add(client_writer)
        if self.plan.blackhole:
            # Hold the connection open and consume nothing: the client
            # keeps waiting until it times out or we are severed.
            try:
                while await client_reader.read(65536):
                    pass
            except (ConnectionResetError, OSError):
                pass
            finally:
                self._writers.discard(client_writer)
                client_writer.transport.abort()
            return
        try:
            backend_reader, backend_writer = await asyncio.open_connection(
                self._backend_host, self._backend_port
            )
        except OSError:
            self._writers.discard(client_writer)
            client_writer.transport.abort()
            return
        self._writers.add(backend_writer)
        up = asyncio.create_task(
            self._pump(client_reader, backend_writer, faulty=False)
        )
        down = asyncio.create_task(
            self._pump(backend_reader, client_writer, faulty=True)
        )
        for task in (up, down):
            self._pumps.add(task)
            task.add_done_callback(self._pumps.discard)
        await asyncio.gather(up, down, return_exceptions=True)
        for writer in (client_writer, backend_writer):
            self._writers.discard(writer)
            transport = writer.transport
            if transport is not None:
                transport.abort()

    async def _pump(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        faulty: bool,
    ) -> None:
        """Forward newline-framed lines, injecting faults when *faulty*."""
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                if faulty and await self._inject(line, writer):
                    continue
                writer.write(line)
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError, OSError, ValueError):
            pass
        finally:
            transport = writer.transport
            if transport is not None:
                transport.abort()
            self._writers.discard(writer)

    async def _inject(self, line: bytes, writer: asyncio.StreamWriter) -> bool:
        """Apply one frame's fault draw; True when the line was consumed."""
        plan = self.plan
        draw = self._rng.random()
        if draw < plan.close_rate:
            # Forward a torn prefix (no newline), then cut the pipe.
            self.closes_injected += 1
            writer.write(line[: max(1, len(line) // 2)])
            try:
                await writer.drain()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass
            raise ConnectionResetError("chaos proxy: injected mid-frame close")
        draw -= plan.close_rate
        if draw < plan.drop_frame_rate:
            self.frames_dropped += 1
            return True
        draw -= plan.drop_frame_rate
        if draw < plan.delay_rate:
            self.frames_delayed += 1
            await self._sleep(plan.delay_s)
        self.frames_forwarded += 1
        return False

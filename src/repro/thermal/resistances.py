"""Thermal resistance formulas shared by the full RC model and the
test-session thermal model.

This module is the single source of truth for how a floorplan turns
into resistances.  The paper's session thermal model (Section 2) is
*derived from* the full RC-equivalent model by dropping capacitances
and rewiring resistances (modifications M1-M3); implementing both on
top of the same formulas guarantees that derivation relationship holds
in code as it does in the paper.

Three resistance families exist:

* **lateral block-to-block** (:func:`lateral_interface_resistance`) —
  conduction through the die from the centre of one block to the centre
  of its neighbour across their shared edge;
* **lateral block-to-die-edge** (:func:`boundary_edge_resistance`) —
  conduction from a block's centre to the die rim plus the rim's weak
  coupling into the package periphery (the ``R_2,N`` style paths of the
  paper's Figure 3);
* **vertical** (:func:`vertical_stack_resistance` and the split parts
  used by the network builder) — conduction from a block upward through
  the remaining die thickness, the TIM, and into the spreader,
  including a spreading (constriction) term that penalises small,
  power-dense blocks.
"""

from __future__ import annotations

import math

from ..floorplan.adjacency import BoundarySegment, Interface
from ..floorplan.floorplan import Block
from .package import PackageConfig


def _half_path_resistance(
    block: Block, side_is_horizontal: bool, shared_length: float, package: PackageConfig
) -> float:
    """Resistance from a block's centre to one of its edges.

    1-D conduction across half the block extent perpendicular to the
    edge, through the die cross-section ``die_thickness x shared_length``.
    """
    extent = block.rect.height if side_is_horizontal else block.rect.width
    area = package.die_thickness * shared_length
    return (extent / 2.0) / (package.die_material.conductivity * area)


def lateral_interface_resistance(
    block_a: Block, block_b: Block, interface: Interface, package: PackageConfig
) -> float:
    """Centre-to-centre lateral resistance across a shared edge (K/W).

    Sum of the two half-path resistances; each half conducts through
    the die cross-section under the shared edge segment.
    """
    side_a = interface.side_of(block_a.name)
    side_b = interface.side_of(block_b.name)
    return _half_path_resistance(
        block_a, side_a.is_horizontal, interface.length, package
    ) + _half_path_resistance(block_b, side_b.is_horizontal, interface.length, package)


def boundary_edge_resistance(
    block: Block, segment: BoundarySegment, package: PackageConfig
) -> float:
    """Resistance from a block's centre through the die rim (K/W).

    Half-path conduction from the block centre to the die edge, in
    series with the rim escape path ``rim_coefficient / L``.  The rim
    path dominates (the die edge is a poor heat port), which is the
    physical reason the paper's session model treats passive-neighbour
    paths as the valuable ones.
    """
    half_path = _half_path_resistance(
        block, segment.side.is_horizontal, segment.length, package
    )
    rim = package.rim_coefficient / segment.length
    return half_path + rim


def spreading_resistance(area: float, package: PackageConfig) -> float:
    """Constriction resistance of a small heat source on the spreader (K/W).

    Uses the classic semi-infinite-medium disc formula ``R = 1/(2 k d)``
    with ``d`` the diameter of the equal-area disc; it scales as
    ``1/sqrt(area)`` so small blocks couple into the spreader less
    efficiently than big ones.  This is the term that makes power
    *density* (not just power) matter in the full simulation, which is
    the physical effect the paper's motivational example demonstrates.
    """
    if area <= 0.0:
        raise ValueError(f"block area must be positive, got {area!r}")
    disc_diameter = 2.0 * math.sqrt(area / math.pi)
    return 1.0 / (2.0 * package.spreader_material.conductivity * disc_diameter)


def vertical_die_resistance(block: Block, package: PackageConfig) -> float:
    """Conduction from the block's heat source plane to the die top (K/W).

    The heat source sits at the transistor layer; heat crosses the die
    thickness over the block footprint.
    """
    return package.die_material.conduction_resistance(
        package.die_thickness, block.area
    )


def vertical_tim_resistance(block: Block, package: PackageConfig) -> float:
    """Conduction through the TIM layer over the block footprint (K/W)."""
    return package.tim_material.conduction_resistance(
        package.tim_thickness, block.area
    )


def vertical_stack_resistance(block: Block, package: PackageConfig) -> float:
    """Total per-block vertical resistance into the spreader body (K/W).

    Die conduction + TIM + spreading constriction.  The network builder
    places this between a die block node and the spreader centre node;
    the session thermal model (when configured to include the vertical
    path) uses the same value in series with the shared spreader-to-
    ambient path.
    """
    return (
        vertical_die_resistance(block, package)
        + vertical_tim_resistance(block, package)
        + spreading_resistance(block.area, package)
    )


def spreader_to_sink_resistance(package: PackageConfig) -> float:
    """Spreader body to sink base conduction resistance (K/W)."""
    return package.spreader_material.conduction_resistance(
        package.spreader_thickness, package.spreader_area
    ) + package.sink_material.conduction_resistance(
        package.sink_thickness, package.spreader_area
    )


def spreader_centre_to_edge_resistance(package: PackageConfig) -> float:
    """Spreader centre node to one peripheral node (K/W).

    Quarter-plate conduction over half the spreader side; the factor of
    four peripheral nodes splits the plate into quadrants.
    """
    cross_section = package.spreader_thickness * package.spreader_side
    return (package.spreader_side / 2.0) / (
        package.spreader_material.conductivity * cross_section
    )


def sink_convection_resistance(package: PackageConfig) -> float:
    """Sink-to-ambient convection resistance (K/W)."""
    return package.convection_resistance


def shared_path_resistance(package: PackageConfig) -> float:
    """Lumped spreader+sink+convection resistance to ambient (K/W).

    Used by the session thermal model's optional vertical path: every
    active core shares this tail, so it is the series term after the
    per-block :func:`vertical_stack_resistance`.
    """
    return spreader_to_sink_resistance(package) + sink_convection_resistance(package)

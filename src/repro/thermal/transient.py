"""Transient solver for compiled thermal networks.

Integrates ``C dT'/dt + G dT = P`` with the implicit (backward) Euler
scheme::

    (C/dt + G) dT_{k+1} = (C/dt) dT_k + P

Backward Euler is unconditionally stable and strictly monotone for this
system, which matters here: the paper's modification M1 replaces
transient peaks with steady-state values on the grounds that the steady
state *upper-bounds* the transient response for a step power input from
ambient.  The transient solver exists to verify exactly that property
(see ``tests/thermal/test_transient.py`` and the M1 validation bench),
and to let users study heating time constants.

Massless junction nodes (capacitance 0) are given a tiny stabilising
mass (1e-9 of the largest capacitance) rather than being eliminated;
with backward Euler this is harmless and keeps the implementation
simple and fully dense-matrix.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.linalg import lu_factor, lu_solve

from ..errors import SolverError
from .rc_network import CompiledNetwork


@dataclass(frozen=True)
class TransientResult:
    """Trajectory of a transient simulation.

    Attributes
    ----------
    times:
        Sample instants (s), starting at ``dt``.
    rises:
        Array of shape ``(len(times), n_nodes)``: temperature rises
        above ambient at each instant.
    node_names:
        Node order of the columns.
    """

    times: np.ndarray
    rises: np.ndarray
    node_names: tuple[str, ...]

    def final_rises(self) -> np.ndarray:
        """Temperature rises at the last simulated instant."""
        return self.rises[-1]

    def peak_rise(self, node: str) -> float:
        """Maximum rise of the named node over the trajectory (K)."""
        column = self.node_names.index(node)
        return float(self.rises[:, column].max())

    def rise_of(self, node: str) -> np.ndarray:
        """Full trajectory of one node."""
        return self.rises[:, self.node_names.index(node)]


class TransientSolver:
    """Backward-Euler transient integrator with cached LU factorisation.

    The factorisation of ``(C/dt + G)`` depends only on the network and
    the step size, so a solver instance bound to one ``dt`` amortises
    the factorisation over every step and every simulation.
    """

    def __init__(self, network: CompiledNetwork, dt: float) -> None:
        if dt <= 0.0:
            raise SolverError(f"time step must be positive, got {dt!r}")
        self._network = network
        self._dt = dt

        capacitance = network.capacitance.copy()
        largest = capacitance.max()
        if largest <= 0.0:
            raise SolverError(
                "transient simulation requires at least one node with "
                "positive capacitance"
            )
        capacitance[capacitance == 0.0] = 1e-9 * largest
        self._c_over_dt = capacitance / dt
        system = network.conductance + np.diag(self._c_over_dt)
        try:
            self._factor = lu_factor(system)
        except np.linalg.LinAlgError as exc:
            raise SolverError(f"transient system factorisation failed: {exc}") from exc

    @property
    def dt(self) -> float:
        """Integration step size (s)."""
        return self._dt

    def simulate(
        self,
        power: np.ndarray,
        duration: float,
        initial_rises: np.ndarray | None = None,
    ) -> TransientResult:
        """Integrate a constant-power interval.

        Parameters
        ----------
        power:
            Heat injection vector (W), constant over the interval.
        duration:
            Interval length (s); rounded up to a whole number of steps.
        initial_rises:
            Starting temperature rises (defaults to all-ambient).

        Returns
        -------
        TransientResult
            One sample per integration step.
        """
        n = len(self._network)
        if power.shape != (n,):
            raise SolverError(f"power vector has shape {power.shape}, expected ({n},)")
        if duration <= 0.0:
            raise SolverError(f"duration must be positive, got {duration!r}")
        state = (
            np.zeros(n) if initial_rises is None else np.asarray(initial_rises, float)
        )
        if state.shape != (n,):
            raise SolverError(
                f"initial state has shape {state.shape}, expected ({n},)"
            )

        steps = int(np.ceil(duration / self._dt))
        times = np.empty(steps)
        rises = np.empty((steps, n))
        for k in range(steps):
            rhs = self._c_over_dt * state + power
            state = lu_solve(self._factor, rhs)
            times[k] = (k + 1) * self._dt
            rises[k] = state
        if not np.all(np.isfinite(rises)):
            raise SolverError("transient solve produced non-finite temperatures")
        return TransientResult(times, rises, self._network.node_names)

    def simulate_schedule(
        self,
        power_intervals: list[tuple[np.ndarray, float]],
        initial_rises: np.ndarray | None = None,
    ) -> TransientResult:
        """Integrate a piecewise-constant power schedule.

        Each element of *power_intervals* is ``(power_vector, duration)``;
        intervals are concatenated, carrying the thermal state across
        boundaries.  This models a full test schedule: each test session
        is one constant-power interval, exactly the structure the paper's
        simulation effort metric counts.
        """
        if not power_intervals:
            raise SolverError("simulate_schedule() requires at least one interval")
        state = initial_rises
        all_times: list[np.ndarray] = []
        all_rises: list[np.ndarray] = []
        offset = 0.0
        for power, duration in power_intervals:
            segment = self.simulate(power, duration, initial_rises=state)
            state = segment.final_rises()
            all_times.append(segment.times + offset)
            all_rises.append(segment.rises)
            offset += segment.times[-1]
        return TransientResult(
            np.concatenate(all_times),
            np.vstack(all_rises),
            self._network.node_names,
        )

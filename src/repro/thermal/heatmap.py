"""ASCII thermal maps of a floorplan.

Renders a :class:`~repro.thermal.simulator.TemperatureField` over its
floorplan as a character raster, dependency-free: each cell shows the
temperature band of the block covering it (hot blocks get dense
glyphs), plus a per-block legend.  Useful for eyeballing why a session
was rejected — the hot spot is literally visible in the terminal.

Example::

    field = simulator.steady_state(power_map)
    print(render_heatmap(simulator.floorplan, field))
"""

from __future__ import annotations

import io

from ..errors import ThermalModelError
from ..floorplan.floorplan import Floorplan
from .simulator import TemperatureField

#: Glyph ramp from coolest to hottest band.
HEAT_RAMP = " .:-=+*#%@"


def _block_at(floorplan: Floorplan, x: float, y: float) -> str | None:
    for block in floorplan:
        r = block.rect
        if r.x <= x < r.x2 and r.y <= y < r.y2:
            return block.name
    return None


def render_heatmap(
    floorplan: Floorplan,
    field: TemperatureField,
    width: int = 48,
    height: int = 24,
    show_legend: bool = True,
) -> str:
    """Render block temperatures as an ASCII raster.

    Parameters
    ----------
    floorplan:
        The floorplan the field was computed on.
    field:
        Steady-state temperatures (from ``ThermalSimulator``).
    width, height:
        Raster size in characters.  The die aspect ratio is *not*
        preserved exactly; terminal cells are taller than wide, so a
        2:1 width:height ratio roughly squares up.
    show_legend:
        Append a per-block temperature table sorted hottest-first.

    Returns
    -------
    str
        The raster (row 0 at the die's north edge) plus the legend.
    """
    if width < 2 or height < 2:
        raise ThermalModelError("heatmap raster must be at least 2x2")
    temps = field.block_temperatures_c()
    missing = [n for n in floorplan.block_names if n not in temps]
    if missing:
        raise ThermalModelError(f"field lacks temperatures for {missing}")

    t_min = min(temps.values())
    t_max = max(temps.values())
    span = (t_max - t_min) or 1.0

    def glyph(name: str | None) -> str:
        if name is None:
            return " "  # uncovered die (whitespace in the layout)
        level = (temps[name] - t_min) / span
        index = min(int(level * len(HEAT_RAMP)), len(HEAT_RAMP) - 1)
        return HEAT_RAMP[index]

    outline = floorplan.outline
    out = io.StringIO()
    out.write("+" + "-" * width + "+\n")
    for row in range(height):
        # Row 0 renders the top (north) strip of the die.
        y = outline.y2 - (row + 0.5) * outline.height / height
        out.write("|")
        for col in range(width):
            x = outline.x + (col + 0.5) * outline.width / width
            out.write(glyph(_block_at(floorplan, x, y)))
        out.write("|\n")
    out.write("+" + "-" * width + "+\n")
    out.write(
        f"scale: '{HEAT_RAMP[0]}' = {t_min:.1f} degC .. "
        f"'{HEAT_RAMP[-1]}' = {t_max:.1f} degC\n"
    )

    if show_legend:
        hottest_first = sorted(temps, key=temps.get, reverse=True)
        widest = max(len(n) for n in hottest_first)
        for name in hottest_first:
            out.write(
                f"  {name:<{widest}}  {temps[name]:7.2f} degC  "
                f"[{glyph(name)}]\n"
            )
    return out.getvalue()


def render_power_density_map(
    floorplan: Floorplan,
    power_by_block: dict[str, float],
    width: int = 48,
    height: int = 24,
) -> str:
    """Render a power-density raster (W/cm^2) of a session's power map.

    The visual companion to the paper's Figure 1 argument: equal-power
    sessions can look radically different in density.
    """
    if not power_by_block:
        raise ThermalModelError("power map must not be empty")
    densities = {
        name: power_by_block.get(name, 0.0) / floorplan[name].area / 1e4
        for name in floorplan.block_names
    }
    d_max = max(densities.values()) or 1.0

    def glyph(name: str | None) -> str:
        if name is None:
            return " "
        level = densities[name] / d_max
        index = min(int(level * len(HEAT_RAMP)), len(HEAT_RAMP) - 1)
        return HEAT_RAMP[index]

    outline = floorplan.outline
    out = io.StringIO()
    out.write("+" + "-" * width + "+\n")
    for row in range(height):
        y = outline.y2 - (row + 0.5) * outline.height / height
        out.write("|")
        for col in range(width):
            x = outline.x + (col + 0.5) * outline.width / width
            out.write(glyph(_block_at(floorplan, x, y)))
        out.write("|\n")
    out.write("+" + "-" * width + "+\n")
    out.write(f"scale: blank = 0 .. '{HEAT_RAMP[-1]}' = {d_max:.1f} W/cm^2\n")
    return out.getvalue()

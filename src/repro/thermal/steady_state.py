"""Steady-state solver for compiled thermal networks.

Solves ``G dT = P`` for the vector of temperature rises above ambient.
``G`` is symmetric positive definite for any validated network (the
Laplacian of a connected resistive graph plus at least one positive
ground conductance), so Cholesky factorisation is both the fastest and
the most numerically robust choice.  The factorisation is cached: test
scheduling solves the *same* network for hundreds of different power
vectors (one per candidate test session), and re-using the factor makes
each additional session solve O(n^2) instead of O(n^3).
"""

from __future__ import annotations

import numpy as np
from scipy.linalg import cho_factor, cho_solve

from ..errors import SolverError
from .rc_network import CompiledNetwork


class SteadyStateSolver:
    """Cached-factorisation steady-state solver for one network."""

    def __init__(self, network: CompiledNetwork) -> None:
        self._network = network
        try:
            self._factor = cho_factor(network.conductance)
        except np.linalg.LinAlgError as exc:
            raise SolverError(
                f"conductance matrix is not positive definite: {exc}; "
                f"the network validator should have rejected this topology"
            ) from exc
        # Columns of G^-1 (one per probed node), computed on demand and
        # kept: the resistance accessors read entries out of them
        # instead of issuing a fresh solve per query.
        self._unit_columns: dict[int, np.ndarray] = {}

    @property
    def network(self) -> CompiledNetwork:
        """The compiled network this solver factorised."""
        return self._network

    def solve(self, power: np.ndarray) -> np.ndarray:
        """Temperature rises ``dT`` (K) for the power vector ``P`` (W).

        Parameters
        ----------
        power:
            Length-``n`` vector of heat injections, one per node, in
            network node order.

        Returns
        -------
        numpy.ndarray
            Length-``n`` vector of temperature rises above ambient.

        Raises
        ------
        SolverError
            On shape mismatch or non-finite results.
        """
        if power.shape != (len(self._network),):
            raise SolverError(
                f"power vector has shape {power.shape}, expected "
                f"({len(self._network)},)"
            )
        rises = cho_solve(self._factor, power)
        if not np.all(np.isfinite(rises)):
            raise SolverError("steady-state solve produced non-finite temperatures")
        return rises

    def solve_many(self, powers: np.ndarray) -> np.ndarray:
        """Temperature rises for many power vectors at once.

        One multi-RHS Cholesky back-substitution: LAPACK handles all
        ``k`` right-hand sides in a single call, which is how the
        reduced-order operator (:mod:`repro.thermal.reduced`) extracts
        every block column of ``G^-1`` in one go.

        Parameters
        ----------
        powers:
            ``(n, k)`` matrix whose columns are power vectors (W).

        Returns
        -------
        numpy.ndarray
            ``(n, k)`` matrix whose columns are the rise vectors (K).
        """
        n = len(self._network)
        if powers.ndim != 2 or powers.shape[0] != n:
            raise SolverError(
                f"power matrix has shape {powers.shape}, expected ({n}, k)"
            )
        rises = cho_solve(self._factor, powers)
        if not np.all(np.isfinite(rises)):
            raise SolverError(
                "multi-RHS steady-state solve produced non-finite temperatures"
            )
        return rises

    def solve_by_name(self, power_by_node: dict[str, float]) -> dict[str, float]:
        """Solve from a name->watts mapping to a name->rise mapping."""
        rises = self.solve(self._network.power_vector(power_by_node))
        return dict(zip(self._network.node_names, rises.tolist()))

    def _unit_column(self, index: int) -> np.ndarray:
        """Column *index* of ``G^-1`` (solved once, then cached)."""
        column = self._unit_columns.get(index)
        if column is None:
            unit = np.zeros(len(self._network))
            unit[index] = 1.0
            column = self.solve(unit)
            self._unit_columns[index] = column
        return column

    def input_output_resistance(self, node: str) -> float:
        """Self thermal resistance of a node (K/W).

        The temperature rise of *node* per watt injected at *node*:
        the diagonal entry of ``G^-1``, read from a cached column of
        the inverse rather than a fresh solve per call.  Used by tests
        (reciprocity, positivity) and useful for floorplan analysis.
        """
        index = self._network.index_of(node)
        return float(self._unit_column(index)[index])

    def transfer_resistance(self, source: str, observation: str) -> float:
        """Mutual thermal resistance between two nodes (K/W).

        Temperature rise at *observation* per watt injected at
        *source*, read from a cached column of ``G^-1``.  Symmetric
        (``G`` is symmetric), which the test suite verifies as a
        physical sanity check (reciprocity).
        """
        column = self._unit_column(self._network.index_of(source))
        return float(column[self._network.index_of(observation)])

"""Grid-mode thermal simulation (HotSpot's fine-grained mode).

The block-mode RC model (:mod:`repro.thermal.builder`) lumps every
floorplan block into one node — fast, and faithful to what the paper's
scheduling loop needs.  HotSpot also offers a *grid mode* that
discretises the die into a regular mesh, resolving temperature
gradients *inside* blocks and across block boundaries.  This module
implements that mode:

* the die becomes an ``nx x ny`` mesh of silicon cells with lateral
  conduction between neighbours (``R = pitch / (k * t * width)``);
* every cell conducts vertically (die + TIM) into the same 7-node
  package model the block mode uses (spreader centre/edges, sink
  centre/periphery, convection), so the two modes share the package;
* boundary cells couple into the package periphery through the same
  die-rim coefficient;
* block power is spread uniformly over the cells the block covers
  (by overlap area), matching HotSpot's power mapping.

One physical difference from block mode is intentional: die area not
covered by any block is still silicon here, conducting heat laterally —
block mode treats it as adiabatic because it has no node for it.  On
fully tiled floorplans the two modes agree closely (the cross-check
experiment quantifies it); on sparse layouts grid mode runs slightly
cooler, which is the physically correct direction.

The steady-state system is sparse (5-point stencil plus the package
tail) and solved with a cached ``scipy.sparse`` LU factorisation, so
sweeping hundreds of sessions at 64 x 64 resolution stays interactive.
Only steady state is provided: the paper's modification M1 means the
scheduler never needs grid-mode transients.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np
from scipy.sparse import csc_matrix
from scipy.sparse.linalg import splu

from ..errors import SolverError, ThermalModelError
from ..floorplan.floorplan import Floorplan
from ..thermal.package import DEFAULT_PACKAGE, PackageConfig
from .resistances import (
    sink_convection_resistance,
    spreader_centre_to_edge_resistance,
    spreader_to_sink_resistance,
)

#: Default mesh resolution (cells per axis).
DEFAULT_RESOLUTION = 32


@dataclass(frozen=True)
class GridTemperatureField:
    """Steady-state cell temperatures from a grid-mode solve.

    Attributes
    ----------
    ambient_c:
        Ambient temperature (Celsius).
    rises:
        Array of shape ``(ny, nx)``: cell temperature rises above
        ambient, row 0 at the die's south edge.
    cell_cover:
        ``(ny, nx)`` array of block indices covering each cell (-1 for
        uncovered die), used for per-block queries.
    block_names:
        Block index -> name mapping.
    """

    ambient_c: float
    rises: np.ndarray
    cell_cover: np.ndarray
    block_names: tuple[str, ...]

    def temperatures_c(self) -> np.ndarray:
        """Absolute cell temperatures (Celsius), shape ``(ny, nx)``."""
        return self.ambient_c + self.rises

    def max_temperature_c(self) -> float:
        """Hottest cell anywhere on the die."""
        return float(self.ambient_c + self.rises.max())

    def _block_mask(self, name: str) -> np.ndarray:
        try:
            index = self.block_names.index(name)
        except ValueError:
            raise ThermalModelError(f"unknown block {name!r}") from None
        mask = self.cell_cover == index
        if not mask.any():
            raise ThermalModelError(
                f"block {name!r} covers no grid cell; increase the resolution"
            )
        return mask

    def block_max_c(self, name: str) -> float:
        """Hottest cell within the named block (the intra-block hot spot)."""
        return float(self.ambient_c + self.rises[self._block_mask(name)].max())

    def block_mean_c(self, name: str) -> float:
        """Area-averaged temperature of the named block."""
        return float(self.ambient_c + self.rises[self._block_mask(name)].mean())

    def intra_block_gradient_c(self, name: str) -> float:
        """Hottest minus coolest cell inside the block — what block mode
        cannot resolve."""
        cells = self.rises[self._block_mask(name)]
        return float(cells.max() - cells.min())


class GridThermalSimulator:
    """Fine-grained steady-state thermal simulation of one floorplan.

    Parameters
    ----------
    floorplan:
        The die floorplan.
    package:
        Package stack (shared semantics with the block-mode builder).
    nx, ny:
        Mesh resolution (cells per axis).
    """

    def __init__(
        self,
        floorplan: Floorplan,
        package: PackageConfig = DEFAULT_PACKAGE,
        nx: int = DEFAULT_RESOLUTION,
        ny: int = DEFAULT_RESOLUTION,
    ) -> None:
        if nx < 2 or ny < 2:
            raise ThermalModelError(f"grid must be at least 2x2, got {nx}x{ny}")
        self._floorplan = floorplan
        self._package = package
        self._nx = nx
        self._ny = ny
        outline = floorplan.outline
        self._dx = outline.width / nx
        self._dy = outline.height / ny

        self._cell_cover = self._map_blocks_to_cells()
        self._block_cell_counts = {
            index: int((self._cell_cover == index).sum())
            for index in range(len(floorplan))
        }
        uncovered = [
            floorplan.block_names[i]
            for i, count in self._block_cell_counts.items()
            if count == 0
        ]
        if uncovered:
            raise ThermalModelError(
                f"blocks cover no grid cell at {nx}x{ny}: {uncovered}; "
                f"increase the resolution"
            )
        self._factor = splu(self._assemble_matrix())

    # -- geometry mapping -------------------------------------------------------

    def _map_blocks_to_cells(self) -> np.ndarray:
        """Assign each cell to the block containing its centre (-1: none)."""
        outline = self._floorplan.outline
        cover = np.full((self._ny, self._nx), -1, dtype=int)
        xs = outline.x + (np.arange(self._nx) + 0.5) * self._dx
        ys = outline.y + (np.arange(self._ny) + 0.5) * self._dy
        for index, block in enumerate(self._floorplan):
            r = block.rect
            col_mask = (xs >= r.x) & (xs < r.x2)
            row_mask = (ys >= r.y) & (ys < r.y2)
            cover[np.ix_(row_mask, col_mask)] = index
        return cover

    # -- matrix assembly -----------------------------------------------------------

    def _cell_index(self, row: int, col: int) -> int:
        return row * self._nx + col

    def _assemble_matrix(self) -> csc_matrix:
        pkg = self._package
        n_cells = self._nx * self._ny
        # Package nodes appended after the cells.
        sp_center = n_cells
        sp_edge = {  # south, north, west, east
            "south": n_cells + 1,
            "north": n_cells + 2,
            "west": n_cells + 3,
            "east": n_cells + 4,
        }
        sink_center = n_cells + 5
        sink_periph = n_cells + 6
        self._n_nodes = n_cells + 7
        self._sp_center = sp_center

        rows: list[int] = []
        cols: list[int] = []
        vals: list[float] = []

        def add_conductance(a: int, b: int, resistance: float) -> None:
            g = 1.0 / resistance
            rows.extend((a, b, a, b))
            cols.extend((a, b, b, a))
            vals.extend((g, g, -g, -g))

        def add_ground(a: int, resistance: float) -> None:
            rows.append(a)
            cols.append(a)
            vals.append(1.0 / resistance)

        k = pkg.die_material.conductivity
        t = pkg.die_thickness
        dx, dy = self._dx, self._dy
        r_east = dx / (k * t * dy)  # between horizontal neighbours
        r_north = dy / (k * t * dx)  # between vertical neighbours
        cell_area = dx * dy
        r_vertical = pkg.die_material.conduction_resistance(
            t, cell_area
        ) + pkg.tim_material.conduction_resistance(pkg.tim_thickness, cell_area)

        for row in range(self._ny):
            for col in range(self._nx):
                node = self._cell_index(row, col)
                if col + 1 < self._nx:
                    add_conductance(node, self._cell_index(row, col + 1), r_east)
                if row + 1 < self._ny:
                    add_conductance(node, self._cell_index(row + 1, col), r_north)
                add_conductance(node, sp_center, r_vertical)
                # Die-rim escape from boundary cells.
                if row == 0:
                    add_conductance(
                        node, sp_edge["south"],
                        dy / 2.0 / (k * t * dx) + pkg.rim_coefficient / dx,
                    )
                if row == self._ny - 1:
                    add_conductance(
                        node, sp_edge["north"],
                        dy / 2.0 / (k * t * dx) + pkg.rim_coefficient / dx,
                    )
                if col == 0:
                    add_conductance(
                        node, sp_edge["west"],
                        dx / 2.0 / (k * t * dy) + pkg.rim_coefficient / dy,
                    )
                if col == self._nx - 1:
                    add_conductance(
                        node, sp_edge["east"],
                        dx / 2.0 / (k * t * dy) + pkg.rim_coefficient / dy,
                    )

        # Package tail, mirroring the block-mode builder.
        centre_to_edge = spreader_centre_to_edge_resistance(pkg)
        stack = spreader_to_sink_resistance(pkg)
        for edge_node in sp_edge.values():
            add_conductance(sp_center, edge_node, centre_to_edge)
            add_conductance(edge_node, sink_periph, stack * 4.0)
        add_conductance(sp_center, sink_center, stack)
        sink_radial = pkg.sink_material.conduction_resistance(
            pkg.sink_thickness, pkg.sink_thickness * 4.0 * pkg.spreader_side
        )
        add_conductance(sink_center, sink_periph, sink_radial)
        spreader_share = pkg.spreader_area / pkg.sink_area
        add_ground(sink_center, sink_convection_resistance(pkg) / spreader_share)
        add_ground(
            sink_periph, sink_convection_resistance(pkg) / (1.0 - spreader_share)
        )

        matrix = csc_matrix(
            (vals, (rows, cols)), shape=(self._n_nodes, self._n_nodes)
        )
        return matrix

    # -- solving ----------------------------------------------------------------------

    @property
    def floorplan(self) -> Floorplan:
        """The floorplan being simulated."""
        return self._floorplan

    @property
    def resolution(self) -> tuple[int, int]:
        """Mesh resolution ``(nx, ny)``."""
        return (self._nx, self._ny)

    @property
    def ambient_c(self) -> float:
        """Ambient temperature (Celsius)."""
        return self._package.ambient_c

    def steady_state(
        self, power_by_block: Mapping[str, float]
    ) -> GridTemperatureField:
        """Solve the mesh for a block power map (W by block name).

        Power is spread uniformly over the block's covered cells.
        """
        power = np.zeros(self._n_nodes)
        for name, watts in power_by_block.items():
            if name not in self._floorplan:
                raise ThermalModelError(f"unknown block {name!r}")
            if watts < 0.0:
                raise ThermalModelError(
                    f"power must be non-negative, got {watts!r} for {name!r}"
                )
            index = self._floorplan.index_of(name)
            mask = (self._cell_cover == index).ravel()
            power[: self._nx * self._ny][mask] += watts / mask.sum()

        rises = self._factor.solve(power)
        if not np.all(np.isfinite(rises)):
            raise SolverError("grid-mode solve produced non-finite temperatures")
        cell_rises = rises[: self._nx * self._ny].reshape(self._ny, self._nx)
        return GridTemperatureField(
            ambient_c=self.ambient_c,
            rises=cell_rises,
            cell_cover=self._cell_cover,
            block_names=self._floorplan.block_names,
        )

"""Reduced-order superposition operator for block-level steady state.

Steady-state temperatures are linear in power (the paper's modification
M1): ``dT = G^-1 P``.  The scheduler only ever *injects* power at die
blocks and only ever *reads back* die-block temperatures, so the full
``(n_nodes, n_nodes)`` solve is wasted work — the exact block-level
answer is the precomputed influence matrix

    ``R[obs, src] = (G^-1)[obs, src]``    (obs, src ranging over blocks)

applied to a block power vector.  ``R`` is computed **once** per
network via a single multi-RHS Cholesky solve (one unit vector per
block) and from then on every candidate-session evaluation is a
``(n_blocks, n_blocks)`` matvec — and a whole batch of candidates is
one GEMM.  This is the same superposition trick that makes the paper's
STC heuristic cheap, applied to the "accurate" simulator itself.

The dense path (:meth:`~repro.thermal.simulator.ThermalSimulator.steady_state`)
remains for full-field consumers (heatmaps, package-node diagnostics);
the reduced path agrees with it to solver precision because both apply
the exact same factorisation — no physics is approximated.
"""

from __future__ import annotations

from typing import Iterator, Mapping, Sequence

import numpy as np

from ..errors import ThermalModelError
from .builder import BuiltModel, die_node
from .rc_network import CompiledNetwork
from .steady_state import SteadyStateSolver


class BlockTemperatureField:
    """Array-backed steady-state temperatures of the die blocks only.

    The lightweight result of the reduced path: one contiguous vector
    of block temperature rises, indexed by block position — no per-node
    dict, no name formatting on read.  The block-level API mirrors
    :class:`~repro.thermal.simulator.TemperatureField`.
    """

    __slots__ = ("ambient_c", "block_names", "block_rises", "_index")

    def __init__(
        self,
        ambient_c: float,
        block_names: tuple[str, ...],
        block_rises: np.ndarray,
        index: Mapping[str, int] | None = None,
    ) -> None:
        if block_rises.shape != (len(block_names),):
            raise ThermalModelError(
                f"block rises have shape {block_rises.shape}, expected "
                f"({len(block_names)},)"
            )
        self.ambient_c = ambient_c
        self.block_names = block_names
        self.block_rises = block_rises
        self._index = (
            index
            if index is not None
            else {name: i for i, name in enumerate(block_names)}
        )

    def _index_of(self, block_name: str) -> int:
        try:
            return self._index[block_name]
        except KeyError:
            raise ThermalModelError(f"unknown block {block_name!r}") from None

    def rise_of(self, block_name: str) -> float:
        """Temperature rise of a block above ambient (K)."""
        return float(self.block_rises[self._index_of(block_name)])

    def temperature_c(self, block_name: str) -> float:
        """Absolute block temperature (Celsius)."""
        return self.ambient_c + self.rise_of(block_name)

    def temperatures_for(self, block_names: Sequence[str]) -> np.ndarray:
        """Absolute temperatures (Celsius) of the named blocks, as an array."""
        idx = [self._index_of(name) for name in block_names]
        return self.ambient_c + self.block_rises[idx]

    def block_temperatures_c(self) -> dict[str, float]:
        """All block temperatures (Celsius), by block name."""
        temps = (self.ambient_c + self.block_rises).tolist()
        return dict(zip(self.block_names, temps))

    def max_temperature_c(self) -> float:
        """Hottest block temperature (Celsius)."""
        return self.ambient_c + float(self.block_rises.max())

    def hottest_block(self) -> str:
        """Name of the hottest block (first of any exact ties)."""
        return self.block_names[int(np.argmax(self.block_rises))]


class BlockTemperatureBatch:
    """Steady-state block temperatures for a whole batch of power maps.

    Wraps the ``(n_blocks, k)`` rise matrix produced by one GEMM over
    ``k`` candidate power maps; column ``j`` is the field of map ``j``.
    """

    __slots__ = ("ambient_c", "block_names", "rises", "_index")

    def __init__(
        self,
        ambient_c: float,
        block_names: tuple[str, ...],
        rises: np.ndarray,
        index: Mapping[str, int] | None = None,
    ) -> None:
        if rises.ndim != 2 or rises.shape[0] != len(block_names):
            raise ThermalModelError(
                f"batched rises have shape {rises.shape}, expected "
                f"({len(block_names)}, k)"
            )
        self.ambient_c = ambient_c
        self.block_names = block_names
        self.rises = rises
        self._index = (
            index
            if index is not None
            else {name: i for i, name in enumerate(block_names)}
        )

    def __len__(self) -> int:
        return self.rises.shape[1]

    def __iter__(self) -> Iterator[BlockTemperatureField]:
        return (self.field(j) for j in range(len(self)))

    def field(self, j: int) -> BlockTemperatureField:
        """The field of the *j*-th power map (a view, not a copy)."""
        return BlockTemperatureField(
            ambient_c=self.ambient_c,
            block_names=self.block_names,
            block_rises=self.rises[:, j],
            index=self._index,
        )

    def temperatures_c(self) -> np.ndarray:
        """Absolute temperatures (Celsius), shape ``(n_blocks, k)``."""
        return self.ambient_c + self.rises

    def max_temperatures_c(self) -> np.ndarray:
        """Hottest block temperature (Celsius) per power map, shape ``(k,)``."""
        return self.ambient_c + self.rises.max(axis=0)

    def own_temperatures_c(self, block_names: Sequence[str]) -> np.ndarray:
        """Temperature of ``block_names[j]`` under power map ``j``.

        The phase-A access pattern: map ``j`` is a singleton session on
        core ``j`` and only that core's own temperature is read back.
        """
        if len(block_names) != len(self):
            raise ThermalModelError(
                f"need one block per power map: got {len(block_names)} names "
                f"for {len(self)} maps"
            )
        try:
            idx = [self._index[name] for name in block_names]
        except KeyError as exc:
            raise ThermalModelError(f"unknown block {exc.args[0]!r}") from None
        return self.ambient_c + self.rises[idx, np.arange(len(self))]


class ReducedSteadyOperator:
    """The block-to-block influence matrix ``R[obs, src] = (G^-1)[obs, src]``.

    Built once per compiled network with a single multi-RHS Cholesky
    solve (``n_blocks`` unit-vector right-hand sides); afterwards every
    block-level steady-state question is a matvec against ``R`` and a
    batch of ``k`` candidate power maps is one ``(n_blocks, n_blocks) x
    (n_blocks, k)`` GEMM.  Immutable and shareable: the engine's
    thermal-model cache hands the same operator to every simulator
    facade built over the same network.
    """

    def __init__(
        self,
        network: CompiledNetwork,
        block_names: tuple[str, ...],
        matrix: np.ndarray,
        ambient_c: float,
    ) -> None:
        n = len(block_names)
        if matrix.shape != (n, n):
            raise ThermalModelError(
                f"influence matrix has shape {matrix.shape}, expected ({n}, {n})"
            )
        self._network = network
        self._block_names = block_names
        self._matrix = matrix
        self._matrix.setflags(write=False)
        self._ambient_c = ambient_c
        self._index = {name: i for i, name in enumerate(block_names)}

    @classmethod
    def from_solver(
        cls,
        solver: SteadyStateSolver,
        block_names: Sequence[str],
        ambient_c: float,
    ) -> "ReducedSteadyOperator":
        """Compute the operator from a factorised solver.

        One ``solve_many`` with a unit vector per block extracts the
        block columns of ``G^-1``; the block rows of those columns are
        the influence matrix.
        """
        network = solver.network
        names = tuple(block_names)
        indices = np.array([network.index_of(die_node(name)) for name in names])
        rhs = np.zeros((len(network), len(names)))
        rhs[indices, np.arange(len(names))] = 1.0
        columns = solver.solve_many(rhs)
        matrix = np.ascontiguousarray(columns[indices, :])
        return cls(network, names, matrix, ambient_c)

    @classmethod
    def from_model(
        cls, model: BuiltModel, solver: SteadyStateSolver
    ) -> "ReducedSteadyOperator":
        """Compute the operator for a built model and its solver."""
        if solver.network is not model.network:
            raise ThermalModelError(
                "solver was factorised for a different network than the model"
            )
        return cls.from_solver(
            solver, model.floorplan.block_names, model.package.ambient_c
        )

    # -- introspection ---------------------------------------------------------------

    @property
    def network(self) -> CompiledNetwork:
        """The compiled network the operator was extracted from."""
        return self._network

    @property
    def block_names(self) -> tuple[str, ...]:
        """Block names, defining the row/column order of the matrix."""
        return self._block_names

    @property
    def n_blocks(self) -> int:
        """Number of blocks (matrix dimension)."""
        return len(self._block_names)

    @property
    def ambient_c(self) -> float:
        """Ambient temperature (Celsius) used by :meth:`temperatures`."""
        return self._ambient_c

    @property
    def matrix(self) -> np.ndarray:
        """The (read-only) ``(n_blocks, n_blocks)`` influence matrix (K/W)."""
        return self._matrix

    @property
    def block_index(self) -> Mapping[str, int]:
        """Block name -> matrix row/column (shared with emitted fields)."""
        return self._index

    def index_of(self, block_name: str) -> int:
        """Row/column of the named block."""
        try:
            return self._index[block_name]
        except KeyError:
            raise ThermalModelError(f"unknown block {block_name!r}") from None

    # -- resistances ---------------------------------------------------------------------

    def self_resistance(self, block_name: str) -> float:
        """Self thermal resistance of a block (K/W): a diagonal entry."""
        i = self.index_of(block_name)
        return float(self._matrix[i, i])

    def transfer_resistance(self, source: str, observation: str) -> float:
        """Mutual thermal resistance between two blocks (K/W): one entry."""
        return float(self._matrix[self.index_of(observation), self.index_of(source)])

    # -- power assembly ----------------------------------------------------------------

    def power_vector(self, power_by_block: Mapping[str, float]) -> np.ndarray:
        """Block power vector from a name->watts mapping (zeros elsewhere)."""
        power = np.zeros(self.n_blocks)
        for name, watts in power_by_block.items():
            if watts < 0.0:
                raise ThermalModelError(
                    f"power injection must be non-negative, got {watts!r} W "
                    f"for block {name!r}"
                )
            power[self.index_of(name)] = watts
        return power

    def power_matrix(
        self, power_maps: Sequence[Mapping[str, float]]
    ) -> np.ndarray:
        """``(n_blocks, k)`` power matrix from *k* name->watts mappings."""
        if not power_maps:
            raise ThermalModelError("power_matrix needs at least one power map")
        powers = np.zeros((self.n_blocks, len(power_maps)))
        for j, power_map in enumerate(power_maps):
            for name, watts in power_map.items():
                if watts < 0.0:
                    raise ThermalModelError(
                        f"power injection must be non-negative, got {watts!r} W "
                        f"for block {name!r}"
                    )
                powers[self.index_of(name), j] = watts
        return powers

    # -- application ------------------------------------------------------------------

    def rises(self, power: np.ndarray) -> np.ndarray:
        """Block temperature rises (K) for block power(s) (W).

        Accepts a ``(n_blocks,)`` vector or a ``(n_blocks, k)`` batch;
        returns the matching shape.
        """
        if power.shape[0] != self.n_blocks or power.ndim > 2:
            raise ThermalModelError(
                f"block power has shape {power.shape}, expected "
                f"({self.n_blocks},) or ({self.n_blocks}, k)"
            )
        return self._matrix @ power

    def temperatures(self, power: np.ndarray) -> np.ndarray:
        """Absolute block temperatures (Celsius) for block power(s) (W).

        The batched evaluation path: ``power`` may be a
        ``(n_blocks, k)`` matrix of candidate power maps, evaluated in
        one GEMM.
        """
        return self._ambient_c + self.rises(power)


class MemoizedSteadyOperator(ReducedSteadyOperator):
    """A reduced operator that answers repeated power inputs from memory.

    The service's request coalescer funnels a whole group of
    same-floorplan requests through one operator; across the group the
    same power inputs recur constantly (every request resolves its TL
    against the same singleton batch, schedulers revisit the same
    candidate sessions).  Memoising by the exact power bytes makes the
    repeat evaluations free *and* keeps the batch path bit-identical to
    solo solves: a memo hit replays the array a solo solve would have
    computed, rather than re-deriving it through a differently-shaped
    GEMM (BLAS results for stacked columns are not bitwise equal to the
    per-column products, so cross-request column stacking is off the
    table for an equivalence-guaranteed path).

    Not thread-safe; intended for one coalesced group processed
    sequentially on a single worker.
    """

    def __init__(self, base: ReducedSteadyOperator) -> None:
        # Shares the base operator's network/matrix objects, so the
        # simulator facade's same-network identity check still passes.
        super().__init__(
            base.network, base.block_names, base.matrix, base.ambient_c
        )
        self._memo: dict[tuple[tuple[int, ...], bytes], np.ndarray] = {}

    @property
    def memo_size(self) -> int:
        """Distinct power inputs answered so far (diagnostics)."""
        return len(self._memo)

    def rises(self, power: np.ndarray) -> np.ndarray:
        key = (power.shape, power.tobytes())
        cached = self._memo.get(key)
        if cached is None:
            cached = super().rises(power)
            cached.setflags(write=False)
            self._memo[key] = cached
        return cached

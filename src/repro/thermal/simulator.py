"""High-level thermal simulation facade.

:class:`ThermalSimulator` is the "accurate thermal simulation" of the
paper's Algorithm 1 (the role HotSpot plays in the original work): given
a floorplan and package it answers *"what temperature does each core
reach for this power map?"* for both steady-state and transient
questions, in Celsius, by block name.

The facade also keeps the bookkeeping the scheduler needs:

* a cached steady-state factorisation (hundreds of candidate sessions
  are solved against the same network);
* a count of how much simulated test time has been requested, which is
  the paper's *simulation effort* metric (see
  :class:`repro.core.scheduler.ThermalAwareScheduler`).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Callable, Mapping, Sequence

import numpy as np

from ..errors import ThermalModelError
from ..floorplan.adjacency import AdjacencyMap
from ..floorplan.floorplan import Floorplan
from .builder import BuiltModel, build_thermal_network, die_node
from .package import DEFAULT_PACKAGE, PackageConfig
from .reduced import (
    BlockTemperatureBatch,
    BlockTemperatureField,
    ReducedSteadyOperator,
)
from .steady_state import SteadyStateSolver
from .transient import TransientResult, TransientSolver


@dataclass(frozen=True)
class TemperatureField:
    """Steady-state temperatures for one power map.

    Attributes
    ----------
    ambient_c:
        Ambient temperature (Celsius).
    rises:
        Temperature rise above ambient per network node (K).
    block_names:
        Floorplan block names (subset of the nodes, without prefixes).
    """

    ambient_c: float
    rises: Mapping[str, float]
    block_names: tuple[str, ...]

    def rise_of(self, block_name: str) -> float:
        """Temperature rise of a block above ambient (K)."""
        node = die_node(block_name)
        if node not in self.rises:
            raise ThermalModelError(f"unknown block {block_name!r}")
        return self.rises[node]

    def temperature_c(self, block_name: str) -> float:
        """Absolute block temperature (Celsius)."""
        return self.ambient_c + self.rise_of(block_name)

    @cached_property
    def _block_rises(self) -> np.ndarray:
        """Block rises in ``block_names`` order, extracted once.

        ``max_temperature_c`` / ``hottest_block`` used to re-do a dict
        lookup plus ``die_node`` string formatting per block per call;
        the array is built on first access and reused.  (A
        ``cached_property`` writes straight to ``__dict__``, which a
        frozen dataclass permits.)
        """
        try:
            return np.array([self.rises[die_node(n)] for n in self.block_names])
        except KeyError as exc:
            raise ThermalModelError(f"unknown block node {exc.args[0]!r}") from None

    def block_temperatures_c(self) -> dict[str, float]:
        """All block temperatures (Celsius), by block name."""
        temps = (self.ambient_c + self._block_rises).tolist()
        return dict(zip(self.block_names, temps))

    def max_temperature_c(self) -> float:
        """Hottest block temperature (Celsius)."""
        return self.ambient_c + float(self._block_rises.max())

    def hottest_block(self) -> str:
        """Name of the hottest block (first of any exact ties)."""
        return self.block_names[int(np.argmax(self._block_rises))]


class ThermalSimulator:
    """Steady-state and transient thermal simulation for one floorplan.

    Parameters
    ----------
    floorplan:
        The die floorplan.
    package:
        Package stack (defaults to :data:`DEFAULT_PACKAGE`).
    adjacency:
        Optional precomputed adjacency map.
    model, steady_solver, reduced:
        Prebuilt handles (see :meth:`from_handles`).  When *model* is
        given the network is not rebuilt and *floorplan* must be
        omitted; when *steady_solver* is also given the Cholesky
        factorisation is re-used instead of recomputed; when *reduced*
        is also given the block-level influence matrix is re-used.
        *reduced* may also be a zero-argument callable returning the
        operator — the engine cache passes a shared lazy slot so the
        extraction happens at most once per cached model, and only if
        some job actually takes the reduced path.
    """

    def __init__(
        self,
        floorplan: Floorplan | None = None,
        package: PackageConfig = DEFAULT_PACKAGE,
        adjacency: AdjacencyMap | None = None,
        *,
        model: BuiltModel | None = None,
        steady_solver: SteadyStateSolver | None = None,
        reduced: (
            ReducedSteadyOperator | Callable[[], ReducedSteadyOperator] | None
        ) = None,
    ) -> None:
        if model is not None:
            if floorplan is not None:
                raise ThermalModelError(
                    "pass either a floorplan to build or a prebuilt model, not both"
                )
            if package is not DEFAULT_PACKAGE or adjacency is not None:
                raise ThermalModelError(
                    "a prebuilt model already fixes the package and adjacency; "
                    "passing them alongside model would be silently ignored"
                )
            self._model = model
        else:
            if floorplan is None:
                raise ThermalModelError(
                    "a floorplan (or a prebuilt model) is required"
                )
            self._model = build_thermal_network(floorplan, package, adjacency)
        if steady_solver is not None:
            if steady_solver.network is not self._model.network:
                raise ThermalModelError(
                    "steady_solver was factorised for a different network"
                )
            self._steady = steady_solver
        else:
            self._steady = SteadyStateSolver(self._model.network)
        self._reduced: ReducedSteadyOperator | None = None
        self._reduced_supplier: Callable[[], ReducedSteadyOperator] | None = None
        if isinstance(reduced, ReducedSteadyOperator):
            self._require_same_network(reduced)
            self._reduced = reduced
        elif reduced is not None:
            self._reduced_supplier = reduced
        self._transient_solvers: dict[float, TransientSolver] = {}
        self._simulated_time_s = 0.0
        self._steady_solve_count = 0

    @classmethod
    def from_handles(
        cls,
        model: BuiltModel,
        steady_solver: SteadyStateSolver | None = None,
        reduced: (
            ReducedSteadyOperator | Callable[[], ReducedSteadyOperator] | None
        ) = None,
    ) -> "ThermalSimulator":
        """A simulator over a prebuilt network and (optionally) its factorisation.

        This is the sharing hook the batch engine's thermal-model cache
        uses: the expensive immutable artefacts (the compiled RC
        network, its Cholesky factor and the reduced-order influence
        matrix) are built once per distinct floorplan+package and every
        job gets a lightweight facade with its *own* effort counters
        around them.
        """
        return cls(model=model, steady_solver=steady_solver, reduced=reduced)

    # -- introspection -------------------------------------------------------------

    @property
    def floorplan(self) -> Floorplan:
        """The floorplan being simulated."""
        return self._model.floorplan

    @property
    def adjacency(self) -> AdjacencyMap:
        """Adjacency map of the floorplan."""
        return self._model.adjacency

    @property
    def package(self) -> PackageConfig:
        """Package configuration."""
        return self._model.package

    @property
    def model(self) -> BuiltModel:
        """The underlying compiled RC model."""
        return self._model

    @property
    def steady_solver(self) -> SteadyStateSolver:
        """The cached-factorisation steady-state solver (shareable handle)."""
        return self._steady

    def _require_same_network(self, operator: ReducedSteadyOperator) -> None:
        if operator.network is not self._model.network:
            raise ThermalModelError(
                "reduced operator was extracted from a different network"
            )

    @property
    def reduced_operator(self) -> ReducedSteadyOperator:
        """The block-level influence operator (built lazily, shareable).

        Extracting it costs one multi-RHS solve against the cached
        factorisation; afterwards every :meth:`block_steady_state` call
        is a ``(n_blocks, n_blocks)`` matvec.  Like the Cholesky
        factorisation itself, the extraction is setup cost and is not
        charged to :attr:`steady_solve_count`.
        """
        if self._reduced is None:
            if self._reduced_supplier is not None:
                operator = self._reduced_supplier()
                self._require_same_network(operator)
                self._reduced = operator
            else:
                self._reduced = ReducedSteadyOperator.from_model(
                    self._model, self._steady
                )
        return self._reduced

    @property
    def ambient_c(self) -> float:
        """Ambient temperature (Celsius)."""
        return self._model.package.ambient_c

    # -- effort accounting ------------------------------------------------------------

    @property
    def simulated_time_s(self) -> float:
        """Cumulative simulated test time requested so far (s).

        This is the paper's *simulation effort*: every call to
        :meth:`simulate_session` adds the session's duration, whether or
        not the session is eventually kept.  The scheduler reads (and
        may reset) this counter.
        """
        return self._simulated_time_s

    @property
    def steady_solve_count(self) -> int:
        """Number of steady-state solves performed (diagnostics)."""
        return self._steady_solve_count

    def reset_effort(self) -> None:
        """Zero the simulation-effort counters."""
        self._simulated_time_s = 0.0
        self._steady_solve_count = 0

    # -- simulation ---------------------------------------------------------------------

    def _check_block_names(self, power_by_block: Mapping[str, float]) -> None:
        for name in power_by_block:
            if name not in self.floorplan:
                raise ThermalModelError(
                    f"power map names unknown block {name!r}; floorplan has "
                    f"{', '.join(self.floorplan.block_names)}"
                )

    def _power_vector(self, power_by_block: Mapping[str, float]) -> np.ndarray:
        self._check_block_names(power_by_block)
        prefixed = {
            die_node(name): watts for name, watts in power_by_block.items()
        }
        return self._model.network.power_vector(prefixed)

    def steady_state(self, power_by_block: Mapping[str, float]) -> TemperatureField:
        """Steady-state temperatures for a block power map (W by name).

        Blocks not present in the map dissipate zero power (they are
        passive cores in the test-session reading).
        """
        power = self._power_vector(power_by_block)
        rises = self._steady.solve(power)
        self._steady_solve_count += 1
        return TemperatureField(
            ambient_c=self.ambient_c,
            rises=dict(zip(self._model.network.node_names, rises.tolist())),
            block_names=self.floorplan.block_names,
        )

    def block_steady_state(
        self, power_by_block: Mapping[str, float]
    ) -> BlockTemperatureField:
        """Block-level steady state via the reduced operator (fast path).

        Numerically equivalent to :meth:`steady_state` restricted to
        the die blocks (same factorisation, superposed), but a single
        ``(n_blocks, n_blocks)`` matvec instead of a full-network
        back-substitution plus a per-node dict.  Use :meth:`steady_state`
        when package-node temperatures are needed (full-field heatmaps).
        """
        self._check_block_names(power_by_block)
        operator = self.reduced_operator
        rises = operator.rises(operator.power_vector(power_by_block))
        self._steady_solve_count += 1
        return BlockTemperatureField(
            ambient_c=self.ambient_c,
            block_names=operator.block_names,
            block_rises=rises,
            index=operator.block_index,
        )

    def block_steady_state_batch(
        self, power_maps: Sequence[Mapping[str, float]]
    ) -> BlockTemperatureBatch:
        """Block-level steady state for *k* power maps in one GEMM.

        Each map is one operator application, so the batch charges
        ``k`` to :attr:`steady_solve_count` — the counter tracks real
        work requested, not Python call counts.
        """
        for power_map in power_maps:
            self._check_block_names(power_map)
        operator = self.reduced_operator
        rises = operator.rises(operator.power_matrix(power_maps))
        self._steady_solve_count += len(power_maps)
        return BlockTemperatureBatch(
            ambient_c=self.ambient_c,
            block_names=operator.block_names,
            rises=rises,
            index=operator.block_index,
        )

    def simulate_session(
        self, power_by_block: Mapping[str, float], duration_s: float
    ) -> TemperatureField:
        """Simulate one test session and charge its duration as effort.

        The thermal answer is the steady-state field (the paper's
        modification M1: steady-state temperatures upper-bound the
        transient peaks, so validating against them is conservative),
        but the *cost* charged is the session duration, mirroring how
        the paper counts "the amount of test session time which needs
        to be simulated".
        """
        if duration_s <= 0.0:
            raise ThermalModelError(
                f"session duration must be positive, got {duration_s!r}"
            )
        field = self.steady_state(power_by_block)
        self._simulated_time_s += duration_s
        return field

    def transient(
        self,
        power_by_block: Mapping[str, float],
        duration_s: float,
        dt: float = 1e-3,
        initial_rises: np.ndarray | None = None,
    ) -> TransientResult:
        """Transient response to a constant power map from ambient.

        A solver is cached per step size; repeated calls with the same
        ``dt`` re-use the matrix factorisation.
        """
        solver = self._transient_solvers.get(dt)
        if solver is None:
            solver = TransientSolver(self._model.network, dt)
            self._transient_solvers[dt] = solver
        power = self._power_vector(power_by_block)
        return solver.simulate(power, duration_s, initial_rises=initial_rises)

    def transient_schedule(
        self,
        intervals: list[tuple[Mapping[str, float], float]],
        dt: float = 1e-3,
    ) -> TransientResult:
        """Transient response to a piecewise-constant schedule of power maps."""
        solver = self._transient_solvers.get(dt)
        if solver is None:
            solver = TransientSolver(self._model.network, dt)
            self._transient_solvers[dt] = solver
        power_intervals = [
            (self._power_vector(power_map), duration)
            for power_map, duration in intervals
        ]
        return solver.simulate_schedule(power_intervals)

    def block_peak_transient_c(
        self, power_by_block: Mapping[str, float], duration_s: float, dt: float = 1e-3
    ) -> dict[str, float]:
        """Peak transient temperature (Celsius) of every block."""
        result = self.transient(power_by_block, duration_s, dt)
        return {
            name: self.ambient_c + result.peak_rise(die_node(name))
            for name in self.floorplan.block_names
        }

"""Material properties for the thermal model.

Values follow the HotSpot defaults (Skadron et al., "Temperature-aware
microarchitecture", ISCA/ISCAS 2003), which is the tool the paper used
for its accurate thermal simulations:

* silicon: k = 100 W/(m K), volumetric heat capacity 1.75e6 J/(m^3 K)
  (HotSpot's values at elevated operating temperature, not the room
  temperature textbook 148 W/(m K));
* copper (spreader and sink): k = 400 W/(m K), 3.55e6 J/(m^3 K);
* thermal interface material: k = 4 W/(m K) (a high-end thermal paste).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ThermalModelError


@dataclass(frozen=True)
class Material:
    """A homogeneous material characterised for heat conduction.

    Attributes
    ----------
    name:
        Human-readable material name.
    conductivity:
        Thermal conductivity k in W/(m K).
    volumetric_heat_capacity:
        rho * c_p in J/(m^3 K); used to size thermal capacitances for
        transient simulation.
    """

    name: str
    conductivity: float
    volumetric_heat_capacity: float

    def __post_init__(self) -> None:
        if self.conductivity <= 0.0:
            raise ThermalModelError(
                f"material {self.name!r}: conductivity must be positive, "
                f"got {self.conductivity!r}"
            )
        if self.volumetric_heat_capacity <= 0.0:
            raise ThermalModelError(
                f"material {self.name!r}: volumetric heat capacity must be "
                f"positive, got {self.volumetric_heat_capacity!r}"
            )

    def conduction_resistance(self, thickness: float, area: float) -> float:
        """1-D conduction resistance of a slab: ``R = t / (k A)`` in K/W."""
        if thickness <= 0.0 or area <= 0.0:
            raise ThermalModelError(
                f"slab must have positive thickness and area, got "
                f"t={thickness!r}, A={area!r}"
            )
        return thickness / (self.conductivity * area)

    def slab_capacitance(self, thickness: float, area: float) -> float:
        """Thermal capacitance of a slab: ``C = rho c_p t A`` in J/K."""
        if thickness <= 0.0 or area <= 0.0:
            raise ThermalModelError(
                f"slab must have positive thickness and area, got "
                f"t={thickness!r}, A={area!r}"
            )
        return self.volumetric_heat_capacity * thickness * area


#: Silicon at operating temperature (HotSpot defaults).
SILICON = Material("silicon", conductivity=100.0, volumetric_heat_capacity=1.75e6)

#: Copper, used for the heat spreader and heat sink base.
COPPER = Material("copper", conductivity=400.0, volumetric_heat_capacity=3.55e6)

#: Thermal interface material between die and spreader.
INTERFACE = Material("interface", conductivity=4.0, volumetric_heat_capacity=4.0e6)

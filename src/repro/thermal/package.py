"""Package (die + spreader + sink) description for the thermal model.

The RC network built by :mod:`repro.thermal.builder` models the standard
single-die package stack that HotSpot models:

* the silicon die (blocks exchange heat laterally and conduct upward);
* a thermal interface material (TIM) layer;
* a copper heat spreader;
* a copper heat sink cooled by convection to ambient air;
* the die rim, through which a small amount of heat escapes laterally
  into the package (this is the "north/south/east/west edge" path the
  paper draws as ``R_2,N`` / ``R_4,W`` in Figure 3).

All geometric and convective parameters live in :class:`PackageConfig`
so experiments can build consistent full-simulation networks and
test-session thermal models from the same numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ThermalModelError
from ..units import DEFAULT_AMBIENT_C
from .materials import COPPER, INTERFACE, SILICON, Material


@dataclass(frozen=True)
class PackageConfig:
    """Parameters of the package thermal stack.

    Defaults follow the HotSpot configuration shipped with the tool the
    paper used, with one documented deviation: ``die_thickness`` is
    0.5 mm (HotSpot's early releases; later defaults use 0.15 mm), which
    gives lateral resistances in a range where the paper's
    session-packing trade-off is well exercised.  See DESIGN.md,
    substitution 1.

    Attributes
    ----------
    die_thickness:
        Silicon die thickness in metres.
    die_material:
        Silicon material constants.
    tim_thickness, tim_material:
        Thermal interface material layer between die and spreader.
    spreader_side, spreader_thickness, spreader_material:
        Copper heat spreader (assumed square, centred over the die).
    sink_side, sink_thickness, sink_material:
        Copper heat sink base plate (assumed square).
    convection_resistance:
        Equivalent convection resistance from the sink to ambient air,
        in K/W.  HotSpot's default r_convec is 0.1 K/W for a high-end
        forced-air sink; we default to a more modest 0.45 K/W typical of
        a test environment without full production cooling, which places
        the experiment's temperature range where the paper's is.
    convection_capacitance:
        Lumped thermal capacitance of the sink/air boundary, J/K.
    rim_coefficient:
        Resistance of the die-rim escape path per metre of die edge
        length, in K m / W: a die-edge segment of length ``L`` couples
        into the package periphery through ``rim_coefficient / L``.
        This path is weak (the die edge is thin) but it is exactly the
        lateral path the paper's session model maximises, so it is
        modelled explicitly rather than folded into the vertical path.
        The default (0.15 K m/W) keeps the die rim a second-order heat
        port, as it is in real packages where nearly all heat leaves
        vertically.
    ambient_c:
        Ambient temperature in Celsius.
    """

    die_thickness: float = 0.5e-3
    die_material: Material = SILICON
    tim_thickness: float = 20e-6
    tim_material: Material = INTERFACE
    spreader_side: float = 30e-3
    spreader_thickness: float = 1e-3
    spreader_material: Material = COPPER
    sink_side: float = 60e-3
    sink_thickness: float = 6.9e-3
    sink_material: Material = COPPER
    convection_resistance: float = 0.45
    convection_capacitance: float = 140.4
    rim_coefficient: float = 0.15
    ambient_c: float = DEFAULT_AMBIENT_C

    def __post_init__(self) -> None:
        positive_fields = {
            "die_thickness": self.die_thickness,
            "tim_thickness": self.tim_thickness,
            "spreader_side": self.spreader_side,
            "spreader_thickness": self.spreader_thickness,
            "sink_side": self.sink_side,
            "sink_thickness": self.sink_thickness,
            "convection_resistance": self.convection_resistance,
            "convection_capacitance": self.convection_capacitance,
            "rim_coefficient": self.rim_coefficient,
        }
        for name, value in positive_fields.items():
            if value <= 0.0:
                raise ThermalModelError(
                    f"package parameter {name} must be positive, got {value!r}"
                )
        if self.sink_side < self.spreader_side:
            raise ThermalModelError(
                f"heat sink ({self.sink_side} m) must be at least as large as "
                f"the spreader ({self.spreader_side} m)"
            )

    # -- derived quantities -------------------------------------------------------

    @property
    def spreader_area(self) -> float:
        """Spreader plate area in m^2."""
        return self.spreader_side * self.spreader_side

    @property
    def sink_area(self) -> float:
        """Sink base plate area in m^2."""
        return self.sink_side * self.sink_side


#: The package used by all built-in experiments.
DEFAULT_PACKAGE = PackageConfig()

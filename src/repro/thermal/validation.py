"""Validation of the paper's modification M1 (steady state as a bound).

The session thermal model keeps only resistances because "steady-state
temperatures ... represent upper bounds for the transient thermal
profiles of individual cores" (paper, Section 2).  For a single session
started from ambient that is a theorem for RC networks (monotone step
response), and :func:`check_session_bound` verifies it numerically.

For a *schedule* the claim needs care: sessions run back to back, so a
session starts from whatever heat its predecessors left behind.
:func:`check_schedule_bound` simulates the whole schedule transiently
(with an optional inter-session cooling gap) and compares every
session's transient peak against its steady-state prediction.  Two
findings the experiments report:

* with the library's default package the bound holds even back to back
  — the package time constants (~minutes) dwarf 1 s sessions, so
  steady-state predictions carry enormous margin;
* the *margin* quantifies exactly how conservative the paper's M1 is
  for short sessions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from ..core.session import TestSchedule
from ..errors import ThermalModelError
from ..soc.system import SocUnderTest
from .builder import die_node
from .simulator import ThermalSimulator


@dataclass(frozen=True)
class SessionBoundCheck:
    """Steady-vs-transient comparison for one session.

    Attributes
    ----------
    cores:
        The session's active cores.
    steady_c:
        Steady-state temperature per active core (the M1 prediction).
    transient_peak_c:
        Peak transient temperature per active core over the session.
    """

    cores: tuple[str, ...]
    steady_c: Mapping[str, float]
    transient_peak_c: Mapping[str, float]

    @property
    def holds(self) -> bool:
        """True when every transient peak is at or below its steady bound."""
        return all(
            self.transient_peak_c[c] <= self.steady_c[c] + 1e-6
            for c in self.cores
        )

    @property
    def min_margin_c(self) -> float:
        """Smallest (steady - transient peak) margin over the cores."""
        return min(
            self.steady_c[c] - self.transient_peak_c[c] for c in self.cores
        )

    @property
    def max_margin_c(self) -> float:
        """Largest margin — how conservative M1 is at its loosest."""
        return max(
            self.steady_c[c] - self.transient_peak_c[c] for c in self.cores
        )


def check_session_bound(
    simulator: ThermalSimulator,
    soc: SocUnderTest,
    cores: list[str],
    dt: float = 2e-3,
) -> SessionBoundCheck:
    """Verify M1 for one session started from ambient."""
    if not cores:
        raise ThermalModelError("session bound check needs at least one core")
    power = soc.session_power_map(cores)
    duration = soc.session_duration_s(cores)
    steady = simulator.steady_state(power)
    transient = simulator.transient(power, duration, dt=dt)
    steady_c = {c: steady.temperature_c(c) for c in cores}
    peak_c = {
        c: simulator.ambient_c + transient.peak_rise(die_node(c)) for c in cores
    }
    return SessionBoundCheck(
        cores=tuple(cores), steady_c=steady_c, transient_peak_c=peak_c
    )


@dataclass(frozen=True)
class ScheduleBoundCheck:
    """Steady-vs-transient comparison across a whole schedule.

    Attributes
    ----------
    cooling_gap_s:
        Idle (zero-power) time inserted between sessions.
    sessions:
        One :class:`SessionBoundCheck` per session, in order, with the
        transient peaks taken from the *continuous* schedule simulation
        (heat carries over between sessions).
    """

    cooling_gap_s: float
    sessions: tuple[SessionBoundCheck, ...]

    @property
    def holds(self) -> bool:
        """True when M1 bounds every session even with heat carry-over."""
        return all(check.holds for check in self.sessions)

    @property
    def min_margin_c(self) -> float:
        """Tightest margin anywhere in the schedule."""
        return min(check.min_margin_c for check in self.sessions)


def check_schedule_bound(
    simulator: ThermalSimulator,
    schedule: TestSchedule,
    cooling_gap_s: float = 0.0,
    dt: float = 2e-3,
) -> ScheduleBoundCheck:
    """Verify M1 across a schedule simulated continuously.

    The schedule is simulated as one piecewise-constant transient (each
    session a constant-power interval, optionally separated by
    zero-power cooling gaps); each session's per-core transient peak is
    then compared against that session's steady-state prediction.
    """
    if cooling_gap_s < 0.0:
        raise ThermalModelError(
            f"cooling gap must be non-negative, got {cooling_gap_s!r}"
        )
    soc = schedule.soc
    intervals: list[tuple[Mapping[str, float], float]] = []
    for session in schedule:
        intervals.append(
            (soc.session_power_map(session.cores), session.duration_s)
        )
        if cooling_gap_s > 0.0:
            intervals.append(({}, cooling_gap_s))
    trajectory = simulator.transient_schedule(intervals, dt=dt)

    # Recover per-session time windows on the concatenated axis.
    checks: list[SessionBoundCheck] = []
    start = 0.0
    for session in schedule:
        end = start + session.duration_s
        window = (trajectory.times > start) & (trajectory.times <= end + dt / 2)
        steady = simulator.steady_state(
            soc.session_power_map(session.cores)
        )
        steady_c = {c: steady.temperature_c(c) for c in session.cores}
        peak_c = {}
        for core in session.cores:
            column = trajectory.node_names.index(die_node(core))
            peak_rise = float(trajectory.rises[window, column].max())
            peak_c[core] = simulator.ambient_c + peak_rise
        checks.append(
            SessionBoundCheck(
                cores=session.cores,
                steady_c=steady_c,
                transient_peak_c=peak_c,
            )
        )
        start = end + (cooling_gap_s if cooling_gap_s > 0.0 else 0.0)
    return ScheduleBoundCheck(
        cooling_gap_s=cooling_gap_s, sessions=tuple(checks)
    )

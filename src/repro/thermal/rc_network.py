"""Generic thermal RC network.

A :class:`ThermalNetwork` is a graph of thermal nodes connected by
thermal resistances, with optional thermal capacitances on the nodes and
resistive ties to *thermal ground* (the ambient).  It exploits the
thermal-electrical duality the paper inherits from HotSpot:

=============  =====================
thermal        electrical
=============  =====================
temperature    voltage
heat flow      current
R (K/W)        resistance
C (J/K)        capacitance
ambient        ground
power source   current source
=============  =====================

The network is assembled incrementally (``add_node`` / ``add_resistance``
/ ``add_ground_resistance``) and then *sealed* by :meth:`compile`, which
builds the conductance (Laplacian + ground) matrix ``G`` and the
capacitance vector ``C`` used by the solvers.  Compilation validates the
network: every node must have a resistive path to ground, otherwise the
steady-state system ``G dT = P`` is singular.

Temperatures inside the network are expressed as **rises above ambient**
(``dT``); the simulator facade converts to absolute Celsius at its API
boundary.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ThermalModelError


@dataclass(frozen=True)
class ResistiveEdge:
    """A thermal resistance between two named nodes."""

    node_a: str
    node_b: str
    resistance: float


@dataclass(frozen=True)
class GroundTie:
    """A thermal resistance from a node to ambient (thermal ground)."""

    node: str
    resistance: float


class CompiledNetwork:
    """Immutable compiled form of a thermal network.

    Attributes
    ----------
    node_names:
        Node names in matrix order.
    conductance:
        Dense ``(n, n)`` symmetric positive-definite conductance matrix
        ``G`` such that steady state satisfies ``G dT = P``.
    capacitance:
        Length-``n`` vector of node capacitances (J/K); zero entries are
        legal for steady-state-only networks but rejected by the
        transient solver.
    """

    def __init__(
        self,
        node_names: tuple[str, ...],
        conductance: np.ndarray,
        capacitance: np.ndarray,
    ) -> None:
        self.node_names = node_names
        self.conductance = conductance
        self.capacitance = capacitance
        self._index = {name: i for i, name in enumerate(node_names)}

    def __len__(self) -> int:
        return len(self.node_names)

    def index_of(self, name: str) -> int:
        """Matrix row/column of the named node."""
        try:
            return self._index[name]
        except KeyError:
            raise ThermalModelError(f"unknown thermal node {name!r}") from None

    def power_vector(self, power_by_node: dict[str, float]) -> np.ndarray:
        """Assemble the power injection vector from a name->watts mapping.

        Nodes not mentioned inject zero power.  Negative powers are
        rejected: blocks are heat sources, never sinks.
        """
        power = np.zeros(len(self.node_names))
        for name, watts in power_by_node.items():
            if watts < 0.0:
                raise ThermalModelError(
                    f"power injection must be non-negative, got {watts!r} W "
                    f"for node {name!r}"
                )
            power[self.index_of(name)] = watts
        return power


class ThermalNetwork:
    """Mutable builder for a thermal RC network.

    Typical use::

        net = ThermalNetwork()
        net.add_node("die:Icache", capacitance=1.3e-3)
        net.add_node("spreader:center", capacitance=2.1)
        net.add_resistance("die:Icache", "spreader:center", 2.5)
        net.add_ground_resistance("spreader:center", 0.6)
        compiled = net.compile()
    """

    def __init__(self) -> None:
        self._capacitance: dict[str, float] = {}
        self._edges: list[ResistiveEdge] = []
        self._ground_ties: list[GroundTie] = []

    # -- construction ----------------------------------------------------------

    def add_node(self, name: str, capacitance: float = 0.0) -> None:
        """Register a node.

        Parameters
        ----------
        name:
            Unique node name.
        capacitance:
            Thermal capacitance in J/K (0.0 for a massless junction
            node; such nodes are fine for steady-state solves and are
            given a tiny stabilising mass by the transient solver).
        """
        if name in self._capacitance:
            raise ThermalModelError(f"duplicate thermal node {name!r}")
        if capacitance < 0.0:
            raise ThermalModelError(
                f"node {name!r}: capacitance must be non-negative, got {capacitance!r}"
            )
        self._capacitance[name] = capacitance

    def has_node(self, name: str) -> bool:
        """True if the node exists."""
        return name in self._capacitance

    def add_resistance(self, node_a: str, node_b: str, resistance: float) -> None:
        """Connect two existing nodes with a thermal resistance (K/W)."""
        self._require_node(node_a)
        self._require_node(node_b)
        if node_a == node_b:
            raise ThermalModelError(f"self-loop resistance on node {node_a!r}")
        if resistance <= 0.0:
            raise ThermalModelError(
                f"resistance {node_a!r}--{node_b!r} must be positive, "
                f"got {resistance!r}"
            )
        self._edges.append(ResistiveEdge(node_a, node_b, resistance))

    def add_ground_resistance(self, node: str, resistance: float) -> None:
        """Connect an existing node to ambient with a resistance (K/W)."""
        self._require_node(node)
        if resistance <= 0.0:
            raise ThermalModelError(
                f"ground resistance on {node!r} must be positive, got {resistance!r}"
            )
        self._ground_ties.append(GroundTie(node, resistance))

    def _require_node(self, name: str) -> None:
        if name not in self._capacitance:
            raise ThermalModelError(
                f"unknown thermal node {name!r}; add_node() it first"
            )

    # -- inspection ---------------------------------------------------------------

    @property
    def node_names(self) -> tuple[str, ...]:
        """Node names in insertion order (the matrix order after compile)."""
        return tuple(self._capacitance)

    @property
    def edges(self) -> tuple[ResistiveEdge, ...]:
        """All node-to-node resistive edges."""
        return tuple(self._edges)

    @property
    def ground_ties(self) -> tuple[GroundTie, ...]:
        """All node-to-ambient resistive ties."""
        return tuple(self._ground_ties)

    # -- compilation -----------------------------------------------------------------

    def compile(self) -> CompiledNetwork:
        """Validate the network and build its matrices.

        Raises
        ------
        ThermalModelError
            If the network is empty or any node lacks a resistive path
            to ground (which would make the steady-state system
            singular: that node's temperature would be unbounded for
            any injected power).
        """
        names = self.node_names
        if not names:
            raise ThermalModelError("cannot compile an empty thermal network")
        n = len(names)
        index = {name: i for i, name in enumerate(names)}

        conductance = np.zeros((n, n))
        for edge in self._edges:
            g = 1.0 / edge.resistance
            i, j = index[edge.node_a], index[edge.node_b]
            conductance[i, i] += g
            conductance[j, j] += g
            conductance[i, j] -= g
            conductance[j, i] -= g
        for tie in self._ground_ties:
            i = index[tie.node]
            conductance[i, i] += 1.0 / tie.resistance

        self._check_grounded(names, index)

        capacitance = np.array([self._capacitance[name] for name in names])
        return CompiledNetwork(names, conductance, capacitance)

    def _check_grounded(self, names: tuple[str, ...], index: dict[str, int]) -> None:
        """Every node must reach a ground tie through resistive edges."""
        grounded = {tie.node for tie in self._ground_ties}
        if not grounded:
            raise ThermalModelError(
                "thermal network has no connection to ambient; "
                "add_ground_resistance() at least once"
            )
        # Breadth-first flood from the grounded nodes across all edges.
        adjacency: dict[str, list[str]] = {name: [] for name in names}
        for edge in self._edges:
            adjacency[edge.node_a].append(edge.node_b)
            adjacency[edge.node_b].append(edge.node_a)
        reached = set(grounded)
        frontier = list(grounded)
        while frontier:
            current = frontier.pop()
            for neighbour in adjacency[current]:
                if neighbour not in reached:
                    reached.add(neighbour)
                    frontier.append(neighbour)
        floating = [name for name in names if name not in reached]
        if floating:
            raise ThermalModelError(
                f"thermal nodes have no path to ambient (singular steady state): "
                f"{', '.join(sorted(floating))}"
            )

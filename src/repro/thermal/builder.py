"""Construct the full RC thermal network for a floorplan + package.

Network topology (a block-mode HotSpot work-alike)::

    die:<block>  --lateral R--  die:<neighbour>          (per shared edge)
    die:<block>  --rim R------  spreader:<side>          (per die-edge segment)
    die:<block>  --vertical R-  spreader:center          (die + TIM + spreading)
    spreader:center --R-- spreader:{north,south,east,west}
    spreader:center --R-- sink:center
    spreader:<side> --R-- sink:periphery
    sink:center --R-- sink:periphery
    sink:center    --R_conv(center share)---> ambient
    sink:periphery --R_conv(periphery share)-> ambient

Each die block carries the heat capacity of its silicon volume; the
spreader and sink plates are split between their centre and peripheral
nodes by area share.  The topology mirrors HotSpot's block-mode package
model with the spreader/sink periphery lumped per side (spreader) and
overall (sink), which keeps the node count at ``n_blocks + 7``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..floorplan.adjacency import AdjacencyMap
from ..floorplan.floorplan import Floorplan
from ..floorplan.geometry import Side
from .package import PackageConfig
from .rc_network import CompiledNetwork, ThermalNetwork
from .resistances import (
    boundary_edge_resistance,
    lateral_interface_resistance,
    spreader_centre_to_edge_resistance,
    spreader_to_sink_resistance,
    vertical_stack_resistance,
)

#: Node-name prefixes / fixed names used by the builder.
DIE_PREFIX = "die:"
SPREADER_CENTER = "spreader:center"
SINK_CENTER = "sink:center"
SINK_PERIPHERY = "sink:periphery"

_SPREADER_EDGE = {
    Side.NORTH: "spreader:north",
    Side.SOUTH: "spreader:south",
    Side.EAST: "spreader:east",
    Side.WEST: "spreader:west",
}


def die_node(block_name: str) -> str:
    """Network node name of a floorplan block."""
    return DIE_PREFIX + block_name


@dataclass(frozen=True)
class BuiltModel:
    """Result of :func:`build_thermal_network`.

    Attributes
    ----------
    network:
        The compiled RC network.
    floorplan, adjacency, package:
        The inputs, retained for downstream consumers (the simulator
        facade and the session thermal model share them).
    """

    network: CompiledNetwork
    floorplan: Floorplan
    adjacency: AdjacencyMap
    package: PackageConfig


def build_thermal_network(
    floorplan: Floorplan,
    package: PackageConfig,
    adjacency: AdjacencyMap | None = None,
) -> BuiltModel:
    """Build and compile the full thermal network for a floorplan.

    Parameters
    ----------
    floorplan:
        Validated floorplan.
    package:
        Package stack parameters.
    adjacency:
        Optional precomputed adjacency map (computed when omitted).

    Returns
    -------
    BuiltModel
        Compiled network plus the inputs for downstream use.
    """
    if adjacency is None:
        adjacency = AdjacencyMap(floorplan)

    net = ThermalNetwork()

    # Die block nodes, each with its silicon heat capacity.
    for block in floorplan:
        capacitance = package.die_material.slab_capacitance(
            package.die_thickness, block.area
        )
        net.add_node(die_node(block.name), capacitance)

    # Package nodes.  Plate capacitances are split by area share: the
    # spreader centre covers the die footprint, the sink centre covers
    # the spreader footprint.
    spreader_cap = package.spreader_material.slab_capacitance(
        package.spreader_thickness, package.spreader_area
    )
    die_share = min(1.0, floorplan.die_area / package.spreader_area)
    net.add_node(SPREADER_CENTER, spreader_cap * die_share)
    for edge_name in _SPREADER_EDGE.values():
        net.add_node(edge_name, spreader_cap * (1.0 - die_share) / 4.0)

    sink_cap = package.sink_material.slab_capacitance(
        package.sink_thickness, package.sink_area
    )
    spreader_share = package.spreader_area / package.sink_area
    net.add_node(
        SINK_CENTER,
        sink_cap * spreader_share + package.convection_capacitance * spreader_share,
    )
    net.add_node(
        SINK_PERIPHERY,
        sink_cap * (1.0 - spreader_share)
        + package.convection_capacitance * (1.0 - spreader_share),
    )

    # Lateral die conduction.
    for interface in adjacency.interfaces:
        block_a = floorplan[interface.block_a]
        block_b = floorplan[interface.block_b]
        resistance = lateral_interface_resistance(block_a, block_b, interface, package)
        net.add_resistance(
            die_node(interface.block_a), die_node(interface.block_b), resistance
        )

    # Die rim escape paths into the package periphery.
    for block in floorplan:
        for segment in adjacency.boundary_segments(block.name):
            resistance = boundary_edge_resistance(block, segment, package)
            net.add_resistance(
                die_node(block.name), _SPREADER_EDGE[segment.side], resistance
            )

    # Vertical per-block paths into the spreader body.
    for block in floorplan:
        net.add_resistance(
            die_node(block.name),
            SPREADER_CENTER,
            vertical_stack_resistance(block, package),
        )

    # Spreader internal conduction and the spreader-to-sink stack.
    centre_to_edge = spreader_centre_to_edge_resistance(package)
    for edge_name in _SPREADER_EDGE.values():
        net.add_resistance(SPREADER_CENTER, edge_name, centre_to_edge)
    stack = spreader_to_sink_resistance(package)
    net.add_resistance(SPREADER_CENTER, SINK_CENTER, stack)
    # Each spreader peripheral quadrant conducts into the sink periphery
    # through a quarter of the plate area.
    for edge_name in _SPREADER_EDGE.values():
        net.add_resistance(edge_name, SINK_PERIPHERY, stack * 4.0)

    # Radial conduction inside the sink base plate.
    sink_radial = package.sink_material.conduction_resistance(
        package.sink_thickness,
        # Effective cross-section: sink thickness times the perimeter of
        # the spreader footprint, over half the annulus width.
        package.sink_thickness * 4.0 * package.spreader_side,
    )
    net.add_resistance(SINK_CENTER, SINK_PERIPHERY, sink_radial)

    # Convection, split by footprint share so the parallel combination
    # equals the configured total convection resistance.
    net.add_ground_resistance(
        SINK_CENTER, package.convection_resistance / spreader_share
    )
    net.add_ground_resistance(
        SINK_PERIPHERY, package.convection_resistance / (1.0 - spreader_share)
    )

    return BuiltModel(net.compile(), floorplan, adjacency, package)

"""RC thermal simulation substrate (DESIGN.md system S2).

A block-level HotSpot work-alike: floorplans become RC networks
(:mod:`builder`), solved for steady state (:mod:`steady_state`) or
transients (:mod:`transient`), all behind the
:class:`~repro.thermal.simulator.ThermalSimulator` facade.
"""

from .builder import BuiltModel, build_thermal_network, die_node
from .grid import GridTemperatureField, GridThermalSimulator
from .heatmap import render_heatmap, render_power_density_map
from .materials import COPPER, INTERFACE, SILICON, Material
from .package import DEFAULT_PACKAGE, PackageConfig
from .rc_network import CompiledNetwork, ThermalNetwork
from .reduced import (
    BlockTemperatureBatch,
    BlockTemperatureField,
    ReducedSteadyOperator,
)
from .simulator import TemperatureField, ThermalSimulator
from .steady_state import SteadyStateSolver
from .transient import TransientResult, TransientSolver
from .validation import (
    ScheduleBoundCheck,
    SessionBoundCheck,
    check_schedule_bound,
    check_session_bound,
)

__all__ = [
    "BlockTemperatureBatch",
    "BlockTemperatureField",
    "BuiltModel",
    "COPPER",
    "CompiledNetwork",
    "DEFAULT_PACKAGE",
    "GridTemperatureField",
    "GridThermalSimulator",
    "INTERFACE",
    "Material",
    "PackageConfig",
    "ReducedSteadyOperator",
    "SILICON",
    "SteadyStateSolver",
    "TemperatureField",
    "ThermalNetwork",
    "ThermalSimulator",
    "TransientResult",
    "TransientSolver",
    "ScheduleBoundCheck",
    "SessionBoundCheck",
    "build_thermal_network",
    "check_schedule_bound",
    "check_session_bound",
    "die_node",
    "render_heatmap",
    "render_power_density_map",
]

"""Simulation-budgeted schedule refinement.

The paper's conclusion notes that the approach "allows exploration of
more efficient solutions at the expense of longer thermal simulation
times through a user selectable parameter".  In Algorithm 1 that
parameter is STCL; this module adds the complementary mechanism: take
any thermally safe schedule and spend an explicit *simulation budget*
(in seconds of simulated session time, the paper's effort currency) on
local improvements:

* **merge** — try fusing two sessions into one; costs one simulation of
  the fused session; kept only if every core stays below ``TL``;
* **move** — try relocating a single core from its (small) session into
  another; costs one simulation of the grown target session; kept if
  safe and if it empties or shortens the source session.

Both operations only ever *shorten* the schedule (or leave it alone),
and every accepted schedule is validated by simulation, so the
refiner preserves thermal safety by construction.  Refinement stops
when the budget is exhausted or no candidate improves the schedule.

This turns the paper's length-vs-effort trade-off into a dial: run
Algorithm 1 with a tight (cheap) STCL, then buy back concurrency with
exactly as much simulation as the user can afford.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

from ..errors import SchedulingError
from ..soc.system import SocUnderTest
from ..thermal.simulator import ThermalSimulator
from .session import TestSchedule, TestSession


@dataclass(frozen=True)
class RefinementStep:
    """One accepted improvement.

    Attributes
    ----------
    kind:
        ``"merge"`` or ``"move"``.
    cores:
        Cores of the session that resulted from the step.
    effort_spent_s:
        Simulated time charged for the step's validation.
    length_after_s:
        Schedule length after the step.
    """

    kind: Literal["merge", "move"]
    cores: tuple[str, ...]
    effort_spent_s: float
    length_after_s: float


@dataclass(frozen=True)
class RefinementResult:
    """Outcome of a refinement run.

    Attributes
    ----------
    schedule:
        The refined (still thermally safe) schedule.
    effort_spent_s:
        Total simulated session time charged, including rejected
        attempts.
    steps:
        The accepted improvements, in order.
    """

    schedule: TestSchedule
    effort_spent_s: float
    steps: tuple[RefinementStep, ...]

    @property
    def length_s(self) -> float:
        """Length of the refined schedule."""
        return self.schedule.length_s


class ScheduleRefiner:
    """Budgeted local improvement of thermally safe schedules.

    Parameters
    ----------
    soc:
        The system under test.
    simulator:
        The accurate thermal simulator (shared with the scheduler that
        produced the input schedule, typically).
    tl_c:
        The temperature limit every refined session must respect.
    """

    def __init__(
        self,
        soc: SocUnderTest,
        simulator: ThermalSimulator,
        tl_c: float,
    ) -> None:
        if tl_c <= soc.package.ambient_c:
            raise SchedulingError(
                f"TL ({tl_c!r} degC) must exceed ambient "
                f"({soc.package.ambient_c!r} degC)"
            )
        self._soc = soc
        self._simulator = simulator
        self._tl_c = tl_c

    def _try_session(
        self, cores: tuple[str, ...]
    ) -> tuple[TestSession | None, float]:
        """Simulate a candidate session; return (session-if-safe, cost)."""
        duration = self._soc.session_duration_s(cores)
        power = self._soc.session_power_map(cores)
        field = self._simulator.simulate_session(power, duration)
        temps = {c: field.temperature_c(c) for c in cores}
        if any(t >= self._tl_c for t in temps.values()):
            return None, duration
        session = TestSession(cores=cores, duration_s=duration).with_temperatures(
            temps
        )
        return session, duration

    def refine(
        self, schedule: TestSchedule, effort_budget_s: float
    ) -> RefinementResult:
        """Improve *schedule* within the given simulation budget.

        Parameters
        ----------
        schedule:
            A thermally safe schedule for this refiner's SoC.
        effort_budget_s:
            Maximum simulated session time to spend (0 returns the
            input unchanged).

        Returns
        -------
        RefinementResult
        """
        if effort_budget_s < 0.0:
            raise SchedulingError(
                f"effort budget must be non-negative, got {effort_budget_s!r}"
            )
        sessions = list(schedule.sessions)
        spent = 0.0
        steps: list[RefinementStep] = []

        improved = True
        while improved and spent < effort_budget_s:
            improved = False

            # Pass 1: merges, smallest combined sessions first (cheapest
            # wins: fusing two singletons saves a whole second).
            pairs = sorted(
                (
                    (i, j)
                    for i in range(len(sessions))
                    for j in range(i + 1, len(sessions))
                ),
                key=lambda ij: len(sessions[ij[0]]) + len(sessions[ij[1]]),
            )
            for i, j in pairs:
                if spent >= effort_budget_s:
                    break
                fused_cores = sessions[i].cores + sessions[j].cores
                fused, cost = self._try_session(fused_cores)
                spent += cost
                if fused is None:
                    continue
                # Commit: replace i, drop j.
                sessions[i] = fused
                del sessions[j]
                steps.append(
                    RefinementStep(
                        kind="merge",
                        cores=fused.cores,
                        effort_spent_s=cost,
                        length_after_s=sum(s.duration_s for s in sessions),
                    )
                )
                improved = True
                break
            if improved:
                continue

            # Pass 2: move a core out of the smallest session.  Only
            # profitable when it empties the source (removing a whole
            # session) — duration never shrinks otherwise with uniform
            # test times, and heterogeneous gains are covered by merges.
            order = sorted(range(len(sessions)), key=lambda i: len(sessions[i]))
            for source_index in order:
                if len(sessions[source_index]) != 1 or len(sessions) < 2:
                    continue
                core = sessions[source_index].cores[0]
                for target_index, target in enumerate(sessions):
                    if target_index == source_index or spent >= effort_budget_s:
                        continue
                    grown, cost = self._try_session(target.cores + (core,))
                    spent += cost
                    if grown is None:
                        continue
                    sessions[target_index] = grown
                    del sessions[source_index]
                    steps.append(
                        RefinementStep(
                            kind="move",
                            cores=grown.cores,
                            effort_spent_s=cost,
                            length_after_s=sum(s.duration_s for s in sessions),
                        )
                    )
                    improved = True
                    break
                if improved:
                    break

        return RefinementResult(
            schedule=TestSchedule(sessions, self._soc),
            effort_spent_s=spent,
            steps=tuple(steps),
        )

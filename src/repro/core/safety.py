"""Post-hoc thermal safety auditing of test schedules.

The paper's scheduler validates its own sessions during construction;
baseline schedulers (power-constrained, random, ...) are thermally
blind, and the whole point of the comparison is to measure how often
their schedules overheat.  This module provides that measurement: it
simulates every session of any schedule and reports per-session peak
temperatures, violations against a limit, and aggregate hot-spot
statistics.  It is also used by integration tests to independently
re-verify schedules produced by the thermal-aware scheduler (trust, but
verify: the audit re-runs the simulation rather than reading the
scheduler's annotations).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping

from ..soc.system import SocUnderTest
from ..thermal.simulator import ThermalSimulator
from .session import TestSchedule, TestSession


@dataclass(frozen=True)
class SessionAudit:
    """Thermal audit of one session.

    Attributes
    ----------
    session:
        The audited session (as scheduled; annotations not trusted).
    core_temperatures_c:
        Freshly simulated steady-state temperature of each active core.
    max_temperature_c:
        Peak over the active cores.
    max_passive_temperature_c:
        Peak over the *passive* blocks during this session — the paper
        checks only active cores (Algorithm 1 line 18), and this field
        lets tests confirm passive blocks stay cooler than the actives.
    violators:
        Active cores at or above the audit limit.
    """

    session: TestSession
    core_temperatures_c: Mapping[str, float]
    max_temperature_c: float
    max_passive_temperature_c: float
    violators: tuple[str, ...]

    @property
    def is_safe(self) -> bool:
        """True when no active core reached the limit."""
        return not self.violators


@dataclass(frozen=True)
class ScheduleAudit:
    """Thermal audit of a whole schedule against a temperature limit.

    Attributes
    ----------
    limit_c:
        The audit limit ``TL`` (Celsius).
    sessions:
        Per-session audits, in schedule order.
    """

    limit_c: float
    sessions: tuple[SessionAudit, ...]

    @property
    def max_temperature_c(self) -> float:
        """Peak active-core temperature over the whole schedule."""
        return max(audit.max_temperature_c for audit in self.sessions)

    @property
    def is_safe(self) -> bool:
        """True when every session is safe."""
        return all(audit.is_safe for audit in self.sessions)

    @property
    def violating_sessions(self) -> tuple[SessionAudit, ...]:
        """The sessions that violated the limit."""
        return tuple(a for a in self.sessions if not a.is_safe)

    @property
    def hot_spot_rate(self) -> float:
        """Fraction of sessions that violated the limit (0..1)."""
        return len(self.violating_sessions) / len(self.sessions)

    @property
    def margin_c(self) -> float:
        """Temperature headroom: ``limit - max_temperature`` (negative if unsafe)."""
        return self.limit_c - self.max_temperature_c

    def describe(self) -> str:
        """Multi-line human-readable audit report."""
        lines = [
            f"Schedule audit against TL={self.limit_c:g} degC: "
            f"{'SAFE' if self.is_safe else 'UNSAFE'}, "
            f"peak {self.max_temperature_c:.2f} degC, "
            f"hot-spot rate {self.hot_spot_rate * 100:.0f}%"
        ]
        for i, audit in enumerate(self.sessions, start=1):
            status = "ok" if audit.is_safe else f"VIOLATES ({', '.join(audit.violators)})"
            lines.append(
                f"  session {i} [{', '.join(audit.session.cores)}]: "
                f"max {audit.max_temperature_c:.2f} degC, {status}"
            )
        return "\n".join(lines)


def audit_session(
    soc: SocUnderTest,
    simulator: ThermalSimulator,
    session: TestSession,
    limit_c: float,
) -> SessionAudit:
    """Simulate one session and compare active cores against a limit."""
    power_map = soc.session_power_map(session.cores)
    field = simulator.steady_state(power_map)
    active = set(session.cores)
    core_temps = {c: field.temperature_c(c) for c in session.cores}
    passive_temps = [
        field.temperature_c(name)
        for name in soc.floorplan.block_names
        if name not in active
    ]
    return SessionAudit(
        session=session,
        core_temperatures_c=core_temps,
        max_temperature_c=max(core_temps.values()),
        max_passive_temperature_c=max(passive_temps) if passive_temps else math.nan,
        violators=tuple(c for c in session.cores if core_temps[c] >= limit_c),
    )


def audit_schedule(
    schedule: TestSchedule,
    limit_c: float,
    simulator: ThermalSimulator | None = None,
) -> ScheduleAudit:
    """Independently re-simulate every session of a schedule.

    Parameters
    ----------
    schedule:
        Any test schedule (thermal-aware or baseline).
    limit_c:
        The temperature limit to audit against.
    simulator:
        Reused if provided (audits share the factorised network);
        otherwise built from the schedule's SoC.

    Returns
    -------
    ScheduleAudit
    """
    soc = schedule.soc
    if simulator is None:
        simulator = ThermalSimulator(soc.floorplan, soc.package, soc.adjacency)
    audits = tuple(
        audit_session(soc, simulator, session, limit_c) for session in schedule
    )
    return ScheduleAudit(limit_c=limit_c, sessions=audits)


def annotate_schedule(
    schedule: TestSchedule, simulator: ThermalSimulator | None = None
) -> TestSchedule:
    """Return a copy of *schedule* with simulated temperatures attached.

    Baselines produce unannotated schedules; this runs the simulation
    the scheduler itself never did so that reports can show the
    temperatures their sessions reach.
    """
    soc = schedule.soc
    if simulator is None:
        simulator = ThermalSimulator(soc.floorplan, soc.package, soc.adjacency)
    annotated = []
    for session in schedule:
        power_map = soc.session_power_map(session.cores)
        field = simulator.steady_state(power_map)
        temps = {c: field.temperature_c(c) for c in session.cores}
        annotated.append(session.with_temperatures(temps))
    return TestSchedule(annotated, soc)

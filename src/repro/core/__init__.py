"""The paper's contribution (DESIGN.md systems S5-S7).

* :mod:`session_model` — the low-complexity test-session thermal model
  (Section 2 of the paper): equivalent resistances, TC and STC;
* :mod:`scheduler` — thermal-aware test schedule generation
  (Algorithm 1);
* :mod:`baselines` — power-constrained and reference schedulers;
* :mod:`safety` — independent thermal auditing of any schedule.
"""

from .baselines import (
    OptimalMinSessionsScheduler,
    PowerConstrainedConfig,
    PowerConstrainedScheduler,
    RandomScheduler,
    maximally_concurrent_schedule,
    sequential_schedule,
)
from .gantt import render_gantt, render_utilisation
from .refine import RefinementResult, RefinementStep, ScheduleRefiner
from .safety import ScheduleAudit, SessionAudit, annotate_schedule, audit_schedule
from .serialize import (
    dump_jsonl,
    load_jsonl,
    load_result,
    result_from_dict,
    result_to_dict,
    save_result,
    schedule_from_dict,
    schedule_to_dict,
)
from .scheduler import (
    PAPER_SCHEDULER,
    DiscardedSession,
    ScheduleResult,
    SchedulerConfig,
    ThermalAwareScheduler,
)
from .session import TestSchedule, TestSession
from .session_model import (
    PAPER_SESSION_MODEL,
    SessionGrowth,
    SessionModelConfig,
    SessionThermalModel,
)
from .weights import PAPER_WEIGHT_FACTOR, WeightEvent, WeightStore

__all__ = [
    "DiscardedSession",
    "OptimalMinSessionsScheduler",
    "PAPER_SCHEDULER",
    "PAPER_SESSION_MODEL",
    "PAPER_WEIGHT_FACTOR",
    "PowerConstrainedConfig",
    "PowerConstrainedScheduler",
    "RandomScheduler",
    "RefinementResult",
    "RefinementStep",
    "ScheduleRefiner",
    "ScheduleAudit",
    "ScheduleResult",
    "SchedulerConfig",
    "SessionAudit",
    "SessionGrowth",
    "SessionModelConfig",
    "SessionThermalModel",
    "TestSchedule",
    "TestSession",
    "ThermalAwareScheduler",
    "WeightEvent",
    "WeightStore",
    "annotate_schedule",
    "audit_schedule",
    "dump_jsonl",
    "load_jsonl",
    "load_result",
    "render_gantt",
    "render_utilisation",
    "result_from_dict",
    "result_to_dict",
    "save_result",
    "schedule_from_dict",
    "schedule_to_dict",
    "maximally_concurrent_schedule",
    "sequential_schedule",
]

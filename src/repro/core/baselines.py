"""Baseline test schedulers.

The paper positions thermal-aware scheduling against the classic
*power-constrained* test scheduling literature (its references [2,6,7,
5,4,1,9,8]): algorithms that cap the summed test power of every session
at a chip-level limit and otherwise maximise concurrency.  This module
implements that family plus reference points used by tests and by the
Figure 1 experiment:

* :func:`sequential_schedule` — one core per session (the schedule
  phase A of Algorithm 1 simulates; the longest sensible schedule);
* :class:`PowerConstrainedScheduler` — greedy first-fit(-decreasing)
  session packing under a chip power cap, the standard formulation of
  Chou et al. / Muresan et al.;
* :class:`RandomScheduler` — seeded random packing under an optional
  power cap (a sanity baseline);
* :class:`OptimalMinSessionsScheduler` — exact branch-and-bound search
  for the minimum number of *thermally safe* sessions.  Exponential in
  the core count; intended for small SoCs, where it provides the lower
  bound the heuristic is judged against.

All baselines return plain :class:`~repro.core.session.TestSchedule`
objects; thermal annotation (and safety auditing) is done by
:mod:`repro.core.safety` so that the baselines themselves stay
simulation-free — the point the paper makes is precisely that they are
blind to temperature.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..errors import SchedulingError
from ..soc.system import SocUnderTest
from ..thermal.simulator import ThermalSimulator
from .session import TestSchedule, TestSession


def sequential_schedule(soc: SocUnderTest) -> TestSchedule:
    """The purely sequential schedule: one core per session, input order."""
    sessions = [
        TestSession(cores=(core.name,), duration_s=core.test_time_s) for core in soc
    ]
    return TestSchedule(sessions, soc)


def maximally_concurrent_schedule(soc: SocUnderTest) -> TestSchedule:
    """All cores in a single session (the shortest conceivable schedule)."""
    names = tuple(soc.core_names)
    return TestSchedule(
        [TestSession(cores=names, duration_s=soc.session_duration_s(names))], soc
    )


@dataclass(frozen=True)
class PowerConstrainedConfig:
    """Configuration for :class:`PowerConstrainedScheduler`.

    Attributes
    ----------
    power_limit_w:
        Chip-level maximum session power (the classic constraint).
    sort_descending:
        First-fit-decreasing (sort by test power, descending) when
        true; plain first-fit in input order otherwise.  FFD is the
        standard bin-packing heuristic in the power-constrained test
        scheduling literature.
    """

    power_limit_w: float
    sort_descending: bool = True

    def __post_init__(self) -> None:
        if self.power_limit_w <= 0.0:
            raise SchedulingError(
                f"power limit must be positive, got {self.power_limit_w!r}"
            )


class PowerConstrainedScheduler:
    """Greedy power-constrained session packing (chip-level power cap).

    This is the baseline whose blind spot the paper's Figure 1
    demonstrates: it accepts any session whose *summed power* fits the
    cap, with no knowledge of where on the die that power lands.
    """

    def __init__(self, soc: SocUnderTest, config: PowerConstrainedConfig) -> None:
        self._soc = soc
        self._config = config
        infeasible = [
            c.name for c in soc if c.test_power_w > config.power_limit_w
        ]
        if infeasible:
            raise SchedulingError(
                f"cores exceed the chip power limit "
                f"{config.power_limit_w:g} W on their own: {infeasible}"
            )

    @property
    def config(self) -> PowerConstrainedConfig:
        """The packing configuration."""
        return self._config

    def schedule(self) -> TestSchedule:
        """Pack cores into sessions under the power cap (first-fit)."""
        names = list(self._soc.core_names)
        if self._config.sort_descending:
            names.sort(key=lambda n: -self._soc[n].test_power_w)

        bins: list[list[str]] = []
        loads: list[float] = []
        for name in names:
            power = self._soc[name].test_power_w
            for i, load in enumerate(loads):
                if load + power <= self._config.power_limit_w:
                    bins[i].append(name)
                    loads[i] += power
                    break
            else:
                bins.append([name])
                loads.append(power)

        sessions = [
            TestSession(
                cores=tuple(cores), duration_s=self._soc.session_duration_s(cores)
            )
            for cores in bins
        ]
        return TestSchedule(sessions, self._soc)

    def accepts_session(self, cores: list[str]) -> bool:
        """Would this baseline accept the given set as one session?

        The Figure 1 experiment uses this to show both the hot and the
        cool session pass the 45 W chip-level check.
        """
        total = self._soc.total_test_power_w(cores)
        return total <= self._config.power_limit_w


class RandomScheduler:
    """Seeded random session packing under an optional power cap.

    Cores are shuffled, then packed first-fit; with no cap every core
    lands in one big session.  Used as a statistical baseline for the
    hot-spot-rate experiment.
    """

    def __init__(
        self,
        soc: SocUnderTest,
        seed: int = 0,
        power_limit_w: float | None = None,
    ) -> None:
        if power_limit_w is not None and power_limit_w <= 0.0:
            raise SchedulingError(
                f"power limit must be positive, got {power_limit_w!r}"
            )
        self._soc = soc
        self._seed = seed
        self._power_limit_w = power_limit_w

    def schedule(self) -> TestSchedule:
        """One random packing (deterministic for a given seed)."""
        rng = np.random.default_rng(self._seed)
        names = list(self._soc.core_names)
        rng.shuffle(names)

        if self._power_limit_w is None:
            sessions = [
                TestSession(
                    cores=tuple(names), duration_s=self._soc.session_duration_s(names)
                )
            ]
            return TestSchedule(sessions, self._soc)

        bins: list[list[str]] = []
        loads: list[float] = []
        for name in names:
            power = self._soc[name].test_power_w
            if power > self._power_limit_w:
                raise SchedulingError(
                    f"core {name!r} exceeds the power limit on its own"
                )
            for i, load in enumerate(loads):
                if load + power <= self._power_limit_w:
                    bins[i].append(name)
                    loads[i] += power
                    break
            else:
                bins.append([name])
                loads.append(power)
        sessions = [
            TestSession(
                cores=tuple(cores), duration_s=self._soc.session_duration_s(cores)
            )
            for cores in bins
        ]
        return TestSchedule(sessions, self._soc)


class OptimalMinSessionsScheduler:
    """Exact minimum-session thermally safe scheduling (small SoCs only).

    Branch-and-bound over core-to-session assignments with symmetry
    breaking (a core may open at most one new session beyond those
    already open).  A session is *feasible* iff the steady-state
    simulation of its cores keeps every active core strictly below
    ``tl_c``.  Feasibility of a core set is memoised, so the thermal
    solver runs once per distinct subset.

    The search cost grows like the Bell number of the core count; the
    constructor refuses SoCs above ``max_cores`` to keep tests honest.
    """

    def __init__(
        self,
        soc: SocUnderTest,
        simulator: ThermalSimulator | None = None,
        max_cores: int = 12,
    ) -> None:
        if len(soc) > max_cores:
            raise SchedulingError(
                f"optimal scheduler is exponential; SoC has {len(soc)} cores, "
                f"limit is {max_cores}"
            )
        self._soc = soc
        self._simulator = (
            simulator
            if simulator is not None
            else ThermalSimulator(soc.floorplan, soc.package, soc.adjacency)
        )
        self._feasible_cache: dict[frozenset[str], bool] = {}

    def _session_feasible(self, cores: frozenset[str], tl_c: float) -> bool:
        cached = self._feasible_cache.get(cores)
        if cached is not None:
            return cached
        power_map = self._soc.session_power_map(sorted(cores))
        field = self._simulator.steady_state(power_map)
        feasible = all(field.temperature_c(c) < tl_c for c in cores)
        self._feasible_cache[cores] = feasible
        return feasible

    def schedule(self, tl_c: float) -> TestSchedule:
        """Find a schedule with the provably minimal number of sessions.

        Raises
        ------
        SchedulingError
            When even singleton sessions are infeasible (some core
            violates ``tl_c`` alone).
        """
        names = list(self._soc.core_names)
        for name in names:
            if not self._session_feasible(frozenset([name]), tl_c):
                raise SchedulingError(
                    f"core {name!r} violates TL={tl_c:g} degC even alone; "
                    f"no schedule exists"
                )

        best: list[list[str]] | None = None

        def search(index: int, partial: list[list[str]]) -> None:
            nonlocal best
            if best is not None and len(partial) >= len(best):
                return  # bound: cannot improve
            if index == len(names):
                best = [list(s) for s in partial]
                return
            core = names[index]
            for session in partial:
                candidate = frozenset(session) | {core}
                if self._session_feasible(candidate, tl_c):
                    session.append(core)
                    search(index + 1, partial)
                    session.pop()
            # Symmetry breaking: opening a new session is always the
            # last alternative, and singletons are feasible by the
            # pre-check above.
            partial.append([core])
            search(index + 1, partial)
            partial.pop()

        search(0, [])
        assert best is not None  # singletons always feasible
        sessions = [
            TestSession(
                cores=tuple(cores), duration_s=self._soc.session_duration_s(cores)
            )
            for cores in best
        ]
        return TestSchedule(sessions, self._soc)

    @property
    def thermal_solve_count(self) -> int:
        """Distinct core subsets thermally evaluated (search cost metric)."""
        return len(self._feasible_cache)

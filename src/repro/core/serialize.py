"""JSON serialisation of schedules and scheduling results.

Schedules are the hand-off artefact between the scheduling flow and the
test floor; this module freezes them (and the full
:class:`~repro.core.scheduler.ScheduleResult` diagnostics) to plain
JSON and loads them back, so runs can be archived, diffed and replayed
without re-simulating.

The schema is versioned; loaders reject unknown versions rather than
guessing.
"""

from __future__ import annotations

import json
import math
import warnings
from pathlib import Path
from typing import Any, Iterable

from ..errors import SchedulingError
from ..soc.system import SocUnderTest
from .scheduler import DiscardedSession, ScheduleResult
from .session import TestSchedule, TestSession

#: Current schema version.  Version 2 added the solver fields to job
#: specs and nullable ``stcl`` on results (solvers that skip the STC
#: heuristic); everything a version-1 record contains is still read the
#: same way, so loaders accept both.
SCHEMA_VERSION = 2

#: Versions loaders accept.
SUPPORTED_SCHEMA_VERSIONS = (1, 2)


def _session_to_dict(session: TestSession) -> dict[str, Any]:
    return {
        "cores": list(session.cores),
        "duration_s": session.duration_s,
        "max_temperature_c": (
            None
            if math.isnan(session.max_temperature_c)
            else session.max_temperature_c
        ),
        "core_temperatures_c": dict(session.core_temperatures_c),
    }


def _session_from_dict(data: dict[str, Any]) -> TestSession:
    session = TestSession(
        cores=tuple(data["cores"]), duration_s=float(data["duration_s"])
    )
    temps = data.get("core_temperatures_c") or {}
    if temps:
        session = session.with_temperatures(
            {str(k): float(v) for k, v in temps.items()}
        )
    return session


def schedule_to_dict(schedule: TestSchedule) -> dict[str, Any]:
    """Serialise a schedule to a JSON-ready dict."""
    return {
        "schema_version": SCHEMA_VERSION,
        "soc": schedule.soc.name,
        "sessions": [_session_to_dict(s) for s in schedule],
    }


def schedule_from_dict(data: dict[str, Any], soc: SocUnderTest) -> TestSchedule:
    """Load a schedule back; validates it against *soc* (partition etc.).

    Raises
    ------
    SchedulingError
        On schema mismatch or if the stored schedule does not fit the
        SoC (wrong cores, double-tested cores, ...).
    """
    version = data.get("schema_version")
    if version not in SUPPORTED_SCHEMA_VERSIONS:
        raise SchedulingError(
            f"unsupported schedule schema version {version!r} "
            f"(this library writes {SCHEMA_VERSION})"
        )
    sessions = [_session_from_dict(s) for s in data["sessions"]]
    return TestSchedule(sessions, soc)


def result_to_dict(result: ScheduleResult) -> dict[str, Any]:
    """Serialise a full scheduling result (schedule + diagnostics).

    ``stcl`` is ``nan`` for solvers that do not use the STC heuristic
    (the unified API's baselines); it is written as ``null`` so the
    output stays strict JSON.
    """
    return {
        "schema_version": SCHEMA_VERSION,
        "tl_c": result.tl_c,
        "stcl": None if math.isnan(result.stcl) else result.stcl,
        "length_s": result.length_s,
        "effort_s": result.effort_s,
        "max_temperature_c": result.max_temperature_c,
        "forced_singletons": result.forced_singletons,
        "steady_solves": result.steady_solves,
        "bcmt_c": dict(result.bcmt_c),
        "weights": dict(result.weights),
        "discarded": [
            {
                "cores": list(d.cores),
                "duration_s": d.duration_s,
                "violators": list(d.violators),
                "max_temperature_c": d.max_temperature_c,
                "iteration": d.iteration,
            }
            for d in result.discarded
        ],
        "schedule": schedule_to_dict(result.schedule),
    }


def result_from_dict(data: dict[str, Any], soc: SocUnderTest) -> ScheduleResult:
    """Load a scheduling result back (schedule revalidated against *soc*)."""
    version = data.get("schema_version")
    if version not in SUPPORTED_SCHEMA_VERSIONS:
        raise SchedulingError(
            f"unsupported result schema version {version!r} "
            f"(this library writes {SCHEMA_VERSION})"
        )
    schedule = schedule_from_dict(data["schedule"], soc)
    discarded = tuple(
        DiscardedSession(
            cores=tuple(d["cores"]),
            duration_s=float(d["duration_s"]),
            violators=tuple(d["violators"]),
            max_temperature_c=float(d["max_temperature_c"]),
            iteration=int(d["iteration"]),
        )
        for d in data.get("discarded", [])
    )
    return ScheduleResult(
        schedule=schedule,
        tl_c=float(data["tl_c"]),
        stcl=math.nan if data["stcl"] is None else float(data["stcl"]),
        length_s=float(data["length_s"]),
        effort_s=float(data["effort_s"]),
        max_temperature_c=float(data["max_temperature_c"]),
        bcmt_c={str(k): float(v) for k, v in data["bcmt_c"].items()},
        weights={str(k): float(v) for k, v in data["weights"].items()},
        discarded=discarded,
        forced_singletons=int(data.get("forced_singletons", 0)),
        steady_solves=int(data.get("steady_solves", 0)),
    )


def dump_jsonl(records: Iterable[dict[str, Any]], path: str | Path) -> int:
    """Write dict records to a JSON-Lines file; returns the record count.

    JSONL is the batch engine's persistence format: one self-contained
    record per line, so fleets of thousands of job results stream to
    disk without holding the whole batch in memory and can be grepped,
    tailed and concatenated like logs.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    count = 0
    with path.open("w") as handle:
        for record in records:
            handle.write(json.dumps(record, separators=(",", ":")))
            handle.write("\n")
            count += 1
    return count


def load_jsonl(
    path: str | Path, *, tolerate_torn_tail: bool = False
) -> list[dict[str, Any]]:
    """Read every record of a JSON-Lines file (blank lines skipped).

    With ``tolerate_torn_tail=True`` a corrupt *final* line — the
    half-written record a killed or still-running appender leaves
    behind — is skipped with a :class:`UserWarning` instead of raising.
    Only the tail gets this grace: a bad record with valid records
    after it is real corruption, not an append in flight, and still
    raises :class:`~repro.errors.SchedulingError`.
    """
    try:
        text = Path(path).read_text()
    except OSError as exc:
        raise SchedulingError(f"cannot load JSONL file {path}: {exc}") from exc
    records: list[dict[str, Any]] = []
    lines = text.splitlines()
    last_lineno = len(lines)
    for lineno, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError as exc:
            if tolerate_torn_tail and lineno == last_lineno:
                warnings.warn(
                    f"skipping torn final JSONL record at {path}:{lineno} "
                    f"(half-written append?): {exc}",
                    stacklevel=2,
                )
                continue
            raise SchedulingError(
                f"corrupt JSONL record at {path}:{lineno}: {exc}"
            ) from exc
    return records


def save_result(result: ScheduleResult, path: str | Path) -> None:
    """Write a scheduling result to a JSON file."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(result_to_dict(result), indent=2))


def load_result(path: str | Path, soc: SocUnderTest) -> ScheduleResult:
    """Read a scheduling result from a JSON file (validated against *soc*)."""
    try:
        data = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise SchedulingError(f"cannot load schedule result {path}: {exc}") from exc
    return result_from_dict(data, soc)

"""Thermal-aware test schedule generation — the paper's Algorithm 1.

The flow (Section 3 of the paper):

* **Phase A (lines 1-7)** — simulate every core tested alone and record
  its *best-case max temperature* (BCMT).  A core whose BCMT already
  reaches the limit ``TL`` cannot be scheduled at all; the paper fixes
  this by redesigning the core's test infrastructure or raising ``TL``,
  neither of which an algorithm can do, so we raise
  :class:`~repro.errors.CoreThermalViolationError`.
* **Phase B (lines 8-28)** — repeatedly grow a test session by scanning
  the unscheduled cores in order and admitting each core whose addition
  keeps the session thermal characteristic within the limit
  (``STC(TS) <= STCL``); then validate the full session with an
  accurate thermal simulation.  On any violation (``MaxTemp >= TL``)
  the session is discarded and the violators' weights are escalated
  (``W *= 1.1``), making them look hotter to the STC heuristic on the
  next attempt; otherwise the session is committed and its cores
  retired.  Loop until every core is scheduled.

Two metrics instrument the run exactly as the paper reports them:

* *test schedule length* — the sum of committed session durations;
* *simulation effort* — the total session time submitted to the
  accurate simulator in phase B, **including discarded sessions**.
  Phase-A singleton simulations are not counted (the paper's "for very
  tight constraints the simulation effort equals the schedule length"
  observation only holds under this accounting).

Termination: every discarded session strictly escalates at least one
weight by a factor > 1, so any session that keeps violating eventually
exceeds ``STCL`` and stops being proposed; in the limit only singleton
sessions remain, and phase A guarantees those commit.  With
``weight_factor = 1.0`` (ablation: no feedback) that argument fails, so
the scheduler additionally enforces ``max_discards``.

One situation the paper's pseudocode does not handle: no remaining core
fits an *empty* session (its singleton STC already exceeds ``STCL``,
e.g. after heavy weight escalation or under an unrealistically tight
limit).  ``on_stuck`` selects between forcing the best core through as
a singleton (default; a singleton is thermally identical to its phase-A
simulation, so it always commits) or raising
:class:`~repro.errors.ScheduleInfeasibleError`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Literal, Mapping

import numpy as np

from ..errors import (
    CoreThermalViolationError,
    ScheduleInfeasibleError,
    SchedulingError,
)
from ..soc.system import SocUnderTest
from ..thermal.simulator import ThermalSimulator
from .session import TestSchedule, TestSession
from .session_model import PAPER_SESSION_MODEL, SessionModelConfig, SessionThermalModel
from .weights import PAPER_WEIGHT_FACTOR, WeightStore

#: Candidate-scan orders for session growth (paper: input order).
CandidateOrder = Literal["input", "power_desc", "area_asc", "density_desc"]


@dataclass(frozen=True)
class SchedulerConfig:
    """Tunables of the thermal-aware scheduler.

    Attributes
    ----------
    weight_factor:
        Escalation factor for violating cores (paper: 1.1; 1.0 turns
        the feedback loop off for the ablation study).
    candidate_order:
        Order in which unscheduled cores are scanned when growing a
        session.  The paper scans "FOR EACH Ci in A" without further
        qualification, i.e. input order; the alternatives are provided
        for sensitivity studies.
    on_stuck:
        Behaviour when no core fits an empty session: ``"force"``
        commits the lowest-STC core as a singleton; ``"error"`` raises.
    max_discards:
        Hard cap on discarded sessions per run (safety net; the paper's
        configuration terminates long before hitting it).
    count_phase_a_effort:
        When true, phase-A singleton simulations are added to the
        simulation-effort metric.  The paper does not count them.
    validation:
        How sessions are thermally validated.  ``"steady"`` is the
        paper's modification M1 (steady-state temperatures, a
        conservative upper bound).  ``"transient"`` validates against
        the actual transient peak over the session duration starting
        from ambient — tighter, so schedules pack harder, at the cost
        of a (far) more expensive simulation per attempt.  The M1
        validation study (`repro.experiments.m1_validation`) quantifies
        the gap between the two.
    transient_dt_s:
        Integration step for ``"transient"`` validation.
    steady_path:
        How ``"steady"`` validations are computed.  ``"reduced"``
        (default) applies the precomputed block-level influence
        operator — one small matvec per candidate session, with phase A
        batched into a single GEMM.  ``"dense"`` issues a full-network
        back-substitution per candidate (the pre-reduced behaviour);
        it exists for equivalence testing and benchmarking, and the two
        agree to solver precision (same factorisation, superposed).
    """

    weight_factor: float = PAPER_WEIGHT_FACTOR
    candidate_order: CandidateOrder = "input"
    on_stuck: Literal["force", "error"] = "force"
    max_discards: int = 10_000
    count_phase_a_effort: bool = False
    validation: Literal["steady", "transient"] = "steady"
    transient_dt_s: float = 1e-2
    steady_path: Literal["reduced", "dense"] = "reduced"

    def __post_init__(self) -> None:
        if self.weight_factor < 1.0:
            raise SchedulingError(
                f"weight_factor must be >= 1.0, got {self.weight_factor!r}"
            )
        if self.max_discards < 1:
            raise SchedulingError(
                f"max_discards must be >= 1, got {self.max_discards!r}"
            )
        if self.transient_dt_s <= 0.0:
            raise SchedulingError(
                f"transient_dt_s must be positive, got {self.transient_dt_s!r}"
            )


#: Configuration matching the paper exactly.
PAPER_SCHEDULER = SchedulerConfig()


@dataclass(frozen=True)
class DiscardedSession:
    """Record of a session rejected by thermal validation.

    Attributes
    ----------
    cores:
        The candidate session's cores.
    duration_s:
        Its duration (charged to simulation effort).
    violators:
        Cores whose simulated temperature reached ``TL``.
    max_temperature_c:
        Peak simulated temperature over the session's cores.
    iteration:
        1-based phase-B iteration number.
    """

    cores: tuple[str, ...]
    duration_s: float
    violators: tuple[str, ...]
    max_temperature_c: float
    iteration: int


@dataclass(frozen=True)
class ScheduleResult:
    """Everything a thermal-aware scheduling run produced.

    Attributes
    ----------
    schedule:
        The committed, thermally validated test schedule.
    tl_c, stcl:
        The limits the run was given.
    length_s:
        Test schedule length (the paper's first metric).
    effort_s:
        Simulation effort in seconds of simulated session time (the
        paper's second metric).
    max_temperature_c:
        Peak simulated temperature over the final schedule (the paper's
        third metric, Table 1 column 5).
    bcmt_c:
        Phase-A best-case max temperature per core.
    weights:
        Final weight of every core.
    discarded:
        All rejected sessions, in order.
    forced_singletons:
        How many sessions had to be forced through the ``on_stuck``
        path (0 in every paper-regime run).
    steady_solves:
        Number of steady-state solves the run issued against the
        simulator (phase A + every candidate session).  Unlike
        ``effort_s`` (simulated seconds, the paper's metric) this
        counts actual linear-system solves, so it tracks real compute
        and surfaces perf regressions in benchmark output.
    """

    schedule: TestSchedule
    tl_c: float
    stcl: float
    length_s: float
    effort_s: float
    max_temperature_c: float
    bcmt_c: Mapping[str, float]
    weights: Mapping[str, float]
    discarded: tuple[DiscardedSession, ...] = field(default_factory=tuple)
    forced_singletons: int = 0
    steady_solves: int = 0

    @property
    def n_sessions(self) -> int:
        """Number of committed sessions."""
        return len(self.schedule)

    @property
    def n_discarded(self) -> int:
        """Number of rejected sessions."""
        return len(self.discarded)

    def describe(self) -> str:
        """Multi-line human-readable run summary."""
        lines = [
            f"Thermal-aware schedule (TL={self.tl_c:g} degC, STCL={self.stcl:g}): "
            f"length {self.length_s:g} s, effort {self.effort_s:g} s, "
            f"max temp {self.max_temperature_c:.2f} degC",
            self.schedule.describe(),
        ]
        if self.steady_solves:
            lines.append(f"  steady-state solves: {self.steady_solves}")
        if self.discarded:
            lines.append(f"  discarded sessions: {self.n_discarded}")
        if self.forced_singletons:
            lines.append(f"  forced singletons: {self.forced_singletons}")
        return "\n".join(lines)


class ThermalAwareScheduler:
    """Algorithm 1 of the paper, bound to one SoC.

    Parameters
    ----------
    soc:
        The system under test.
    simulator:
        The accurate thermal simulator (built from the SoC's floorplan
        and package when omitted) — the HotSpot stand-in.
    session_model:
        The STC session model (built with the paper configuration when
        omitted).
    config:
        Scheduler tunables (defaults reproduce the paper).
    growth_memo:
        Optional cross-request memo for :meth:`_grow_session`
        trajectories, keyed by the exact growth inputs
        ``(stcl, ordered candidates, their weights)``.  Supplied by the
        service's request coalescer when several requests share one
        session model: growth is a pure function of those inputs over
        an immutable model, so replaying a stored trajectory is
        bit-identical to re-running the loop.  The caller owns the
        memo's scope — it must never outlive the model instance it was
        filled against.
    """

    def __init__(
        self,
        soc: SocUnderTest,
        simulator: ThermalSimulator | None = None,
        session_model: SessionThermalModel | None = None,
        session_model_config: SessionModelConfig = PAPER_SESSION_MODEL,
        config: SchedulerConfig = PAPER_SCHEDULER,
        growth_memo: dict | None = None,
    ) -> None:
        self._soc = soc
        self._simulator = (
            simulator
            if simulator is not None
            else ThermalSimulator(soc.floorplan, soc.package, soc.adjacency)
        )
        self._model = (
            session_model
            if session_model is not None
            else SessionThermalModel(soc, session_model_config)
        )
        self._config = config
        self._growth_memo = growth_memo

    @property
    def soc(self) -> SocUnderTest:
        """The system under test."""
        return self._soc

    @property
    def simulator(self) -> ThermalSimulator:
        """The accurate thermal simulator used for validation."""
        return self._simulator

    @property
    def session_model(self) -> SessionThermalModel:
        """The STC session model guiding session growth."""
        return self._model

    @property
    def config(self) -> SchedulerConfig:
        """The scheduler configuration."""
        return self._config

    # -- phase A ------------------------------------------------------------------

    def _use_reduced(self) -> bool:
        return (
            self._config.validation == "steady"
            and self._config.steady_path == "reduced"
        )

    def _session_temperatures(
        self, power_map: dict[str, float], duration_s: float, cores: list[str]
    ) -> np.ndarray:
        """Per-core validation temperatures for one candidate session.

        Returns an array aligned with *cores* (Celsius).  ``"steady"``
        uses the reduced block-level operator (one matvec) or, on the
        ``"dense"`` path, the cached full-network solve (the paper's
        M1); ``"transient"`` uses the true transient peak over the
        session duration starting from ambient.
        """
        if self._config.validation == "steady":
            if self._use_reduced():
                field_ = self._simulator.block_steady_state(power_map)
                return field_.temperatures_for(cores)
            field_ = self._simulator.steady_state(power_map)
            return np.array([field_.temperature_c(c) for c in cores])
        peaks = self._simulator.block_peak_transient_c(
            power_map, duration_s, dt=self._config.transient_dt_s
        )
        return np.array([peaks[c] for c in cores])

    def best_case_max_temperatures(self) -> tuple[dict[str, float], float]:
        """Simulate the purely sequential schedule (lines 1-3).

        On the reduced steady path, every singleton session is one
        column of a single batched operator application (one GEMM for
        the whole of phase A).

        Returns
        -------
        (bcmt, effort_s)
            Per-core best-case max temperature (Celsius) and the
            simulated time spent (only charged to the effort metric
            when :attr:`SchedulerConfig.count_phase_a_effort` is set).
        """
        names = self._ordered(list(self._soc.core_names))
        effort = sum(self._soc[name].test_time_s for name in names)
        if self._use_reduced():
            batch = self._simulator.block_steady_state_batch(
                [{name: self._soc[name].test_power_w} for name in names]
            )
            own = batch.own_temperatures_c(names)
            return dict(zip(names, own.tolist())), effort

        bcmt: dict[str, float] = {}
        for name in names:
            core = self._soc[name]
            temps = self._session_temperatures(
                {name: core.test_power_w}, core.test_time_s, [name]
            )
            bcmt[name] = float(temps[0])
        return bcmt, effort

    # -- phase B helpers -------------------------------------------------------------

    def _ordered(self, names: list[str]) -> list[str]:
        order = self._config.candidate_order
        if order == "input":
            return list(names)
        if order == "power_desc":
            return sorted(names, key=lambda n: -self._soc[n].test_power_w)
        if order == "area_asc":
            return sorted(names, key=lambda n: self._soc.floorplan[n].area)
        if order == "density_desc":
            return sorted(
                names,
                key=lambda n: -self._soc[n].test_power_w / self._soc.floorplan[n].area,
            )
        raise SchedulingError(f"unknown candidate order {order!r}")

    def _grow_session(
        self, pending: list[str], stcl: float, weights: WeightStore
    ) -> list[str]:
        """Lines 9-15: greedily admit cores while STC stays within STCL.

        The STC of each tentative candidate is maintained incrementally
        (:class:`~repro.core.session_model.SessionGrowth`): admitting a
        core only rewires its direct neighbours' escape paths, so only
        those contributions are recomputed — bit-identical to the
        from-scratch evaluation, without the O(session * degree) rescan
        per candidate.

        With a ``growth_memo``, the trajectory is keyed by everything
        the loop reads — STCL, the ordered candidate list and each
        candidate's weight (growth only ever reads weights of cores it
        considers admitting, all of which are in *pending*) — so a memo
        hit replays exactly what the loop would have produced.
        """
        mapping = weights.as_mapping()
        ordered = self._ordered(pending)
        key = None
        if self._growth_memo is not None:
            key = (
                stcl,
                tuple(ordered),
                tuple(mapping.get(c, 1.0) for c in ordered),
            )
            stored = self._growth_memo.get(key)
            if stored is not None:
                return list(stored)
        growth = self._model.start_session(mapping)
        session: list[str] = []
        for candidate in ordered:
            if growth.stc_if_added(candidate) <= stcl:
                growth.add(candidate)
                session.append(candidate)
        if key is not None:
            self._growth_memo[key] = tuple(session)
        return session

    # -- the full flow ----------------------------------------------------------------

    def schedule(self, tl_c: float, stcl: float) -> ScheduleResult:
        """Generate a thermal-safe test schedule.

        Parameters
        ----------
        tl_c:
            Maximum allowable temperature ``TL`` (Celsius); a simulated
            core temperature **at or above** this value is a violation
            (the paper's ``MaxTemp >= TL`` test, line 19).
        stcl:
            Session thermal characteristic limit ``STCL``.

        Returns
        -------
        ScheduleResult

        Raises
        ------
        CoreThermalViolationError
            When a core violates ``TL`` even tested alone (phase A).
        ScheduleInfeasibleError
            When ``on_stuck="error"`` and no core fits an empty
            session, or ``max_discards`` is exhausted.
        """
        if stcl <= 0.0:
            raise SchedulingError(f"STCL must be positive, got {stcl!r}")
        solves_before = self._simulator.steady_solve_count

        # Phase A: individual-core thermal sanity (lines 1-7).
        bcmt, phase_a_effort = self.best_case_max_temperatures()
        for name, temperature in bcmt.items():
            if temperature >= tl_c:
                raise CoreThermalViolationError(name, temperature, tl_c)

        # Phase B: session packing (lines 8-28).
        weights = WeightStore(self._soc.core_names, self._config.weight_factor)
        pending = list(self._soc.core_names)
        committed: list[TestSession] = []
        discarded: list[DiscardedSession] = []
        effort_s = phase_a_effort if self._config.count_phase_a_effort else 0.0
        forced_singletons = 0
        iteration = 0

        while pending:
            iteration += 1
            session_cores = self._grow_session(pending, stcl, weights)
            if not session_cores:
                if self._config.on_stuck == "error":
                    raise ScheduleInfeasibleError(
                        f"no remaining core fits an empty session at STCL={stcl:g} "
                        f"(pending: {pending}); weights may have escalated past "
                        f"the limit"
                    )
                weight_map = weights.as_mapping()
                best = min(
                    pending,
                    key=lambda c: self._model.session_thermal_characteristic(
                        [c], weight_map
                    ),
                )
                session_cores = [best]
                forced_singletons += 1

            duration = self._soc.session_duration_s(session_cores)
            power_map = self._soc.session_power_map(session_cores)
            temps = self._session_temperatures(power_map, duration, session_cores)
            effort_s += duration

            # Vectorised violator detection: one comparison against TL
            # over the whole session instead of a per-core Python loop.
            violator_mask = temps >= tl_c
            if violator_mask.any():
                # Lines 19-22: discard, escalate, retry.
                violators = tuple(
                    c for c, bad in zip(session_cores, violator_mask) if bad
                )
                weights.penalise_all(violators, iteration)
                discarded.append(
                    DiscardedSession(
                        cores=tuple(session_cores),
                        duration_s=duration,
                        violators=violators,
                        max_temperature_c=float(temps.max()),
                        iteration=iteration,
                    )
                )
                if len(discarded) >= self._config.max_discards:
                    raise ScheduleInfeasibleError(
                        f"exceeded max_discards={self._config.max_discards} at "
                        f"TL={tl_c:g}, STCL={stcl:g}; the weight feedback is not "
                        f"converging (weight_factor="
                        f"{self._config.weight_factor:g})"
                    )
                continue

            # Lines 24-27: commit the session.
            session = TestSession(
                cores=tuple(session_cores), duration_s=duration
            ).with_temperatures(dict(zip(session_cores, temps.tolist())))
            committed.append(session)
            retained = set(session_cores)
            pending = [c for c in pending if c not in retained]

        schedule = TestSchedule(committed, self._soc)
        return ScheduleResult(
            schedule=schedule,
            tl_c=tl_c,
            stcl=stcl,
            length_s=schedule.length_s,
            effort_s=effort_s,
            max_temperature_c=schedule.max_temperature_c,
            bcmt_c=bcmt,
            weights=weights.as_mapping(),
            discarded=tuple(discarded),
            forced_singletons=forced_singletons,
            steady_solves=self._simulator.steady_solve_count - solves_before,
        )

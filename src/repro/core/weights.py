"""Adaptive core weights for the thermal-aware scheduler.

Algorithm 1 penalises cores that violate the temperature limit inside a
candidate session: their weight ``W(i)`` is multiplied by 1.1 (line 20)
so the session thermal characteristic sees them as hotter and packs
them into less busy sessions on subsequent attempts.  Weights start at
1 and only ever grow; they persist across sessions within one
scheduling run (a core that proved troublesome stays penalised).

:class:`WeightStore` encapsulates that state with an audit trail, which
the experiments use to report how much feedback the heuristic needed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

from ..errors import SchedulingError

#: The paper's weight escalation factor (Algorithm 1, line 20).
PAPER_WEIGHT_FACTOR = 1.1


@dataclass(frozen=True)
class WeightEvent:
    """One weight escalation: which core, when, and the new value."""

    core: str
    iteration: int
    new_weight: float


class WeightStore:
    """Per-core multiplicative penalty weights.

    Parameters
    ----------
    core_names:
        The cores being scheduled; all weights start at 1.0.
    factor:
        Escalation factor applied on every violation (paper: 1.1).
        A factor of exactly 1.0 disables the feedback loop — useful as
        an ablation (DESIGN.md section 7).
    """

    def __init__(self, core_names: Iterable[str], factor: float = PAPER_WEIGHT_FACTOR):
        if factor < 1.0:
            raise SchedulingError(
                f"weight factor must be >= 1.0 (weights only grow), got {factor!r}"
            )
        self._weights: dict[str, float] = {name: 1.0 for name in core_names}
        if not self._weights:
            raise SchedulingError("weight store needs at least one core")
        self._factor = factor
        self._events: list[WeightEvent] = []

    @property
    def factor(self) -> float:
        """The escalation factor."""
        return self._factor

    def __getitem__(self, core: str) -> float:
        try:
            return self._weights[core]
        except KeyError:
            raise SchedulingError(f"unknown core {core!r} in weight store") from None

    def __contains__(self, core: object) -> bool:
        return core in self._weights

    def penalise(self, core: str, iteration: int) -> float:
        """Escalate one core's weight (``W *= factor``); returns the new value."""
        new_weight = self[core] * self._factor
        self._weights[core] = new_weight
        self._events.append(WeightEvent(core, iteration, new_weight))
        return new_weight

    def penalise_all(self, cores: Iterable[str], iteration: int) -> None:
        """Escalate several cores at once (Algorithm 1 lines 18-23)."""
        for core in cores:
            self.penalise(core, iteration)

    def as_mapping(self) -> Mapping[str, float]:
        """Snapshot of the current weights."""
        return dict(self._weights)

    @property
    def events(self) -> tuple[WeightEvent, ...]:
        """Audit trail of every escalation, in order."""
        return tuple(self._events)

    @property
    def total_penalisations(self) -> int:
        """How many escalations happened (diagnostics)."""
        return len(self._events)

    def max_weight(self) -> float:
        """The largest current weight."""
        return max(self._weights.values())

"""ASCII Gantt rendering of test schedules.

A test schedule is a timeline: cores on the rows, sessions on the
columns.  :func:`render_gantt` draws it with per-session temperature
annotations, making the output of the scheduler reviewable at a glance
— which cores share a session, how long the schedule is, and how close
each session runs to the limit.
"""

from __future__ import annotations

import io
import math

from ..errors import SchedulingError
from .session import TestSchedule

#: Glyph used for an active test interval.
ACTIVE = "#"
#: Glyph used for idle time.
IDLE = "."

#: Seconds represented by one character column (sessions are scaled).
DEFAULT_SECONDS_PER_COLUMN = 0.25


def render_gantt(
    schedule: TestSchedule,
    seconds_per_column: float = DEFAULT_SECONDS_PER_COLUMN,
    limit_c: float | None = None,
) -> str:
    """Render a schedule as an ASCII Gantt chart.

    Parameters
    ----------
    schedule:
        The schedule to draw (annotated or not).
    seconds_per_column:
        Time resolution of the chart.
    limit_c:
        Optional temperature limit; annotated sessions get a
        ``margin`` column against it.

    Returns
    -------
    str
        Core rows, a time axis, and a per-session summary.
    """
    if seconds_per_column <= 0.0:
        raise SchedulingError(
            f"seconds_per_column must be positive, got {seconds_per_column!r}"
        )
    soc = schedule.soc
    columns_per_session = [
        max(1, round(s.duration_s / seconds_per_column)) for s in schedule
    ]
    total_columns = sum(columns_per_session)
    widest = max(len(name) for name in soc.core_names)

    out = io.StringIO()
    out.write(
        f"Test schedule Gantt — {soc.name!r}: {len(schedule)} sessions, "
        f"{schedule.length_s:g} s\n"
    )
    for name in soc.core_names:
        out.write(f"  {name:<{widest}} |")
        for session, n_cols in zip(schedule, columns_per_session):
            glyph = ACTIVE if name in session else IDLE
            out.write(glyph * n_cols)
        out.write("|\n")

    # Time axis: session boundaries marked with their index.
    out.write("  " + " " * widest + " |")
    for index, n_cols in enumerate(columns_per_session, start=1):
        label = str(index)
        if n_cols >= len(label):
            pad = n_cols - len(label)
            out.write(label + " " * pad)
        else:
            out.write("." * n_cols)
    out.write("|\n")

    for index, session in enumerate(schedule, start=1):
        line = (
            f"  session {index}: [{', '.join(session.cores)}] "
            f"{session.duration_s:g} s"
        )
        if not math.isnan(session.max_temperature_c):
            line += f", max {session.max_temperature_c:.2f} degC"
            if limit_c is not None:
                line += f" (margin {limit_c - session.max_temperature_c:+.2f})"
        out.write(line + "\n")
    out.write(f"  total tester time: {schedule.length_s:g} s, ")
    out.write(f"max concurrency: {schedule.max_concurrency}\n")
    return out.getvalue()


def render_utilisation(schedule: TestSchedule) -> str:
    """One-line tester-utilisation summary of a schedule.

    Utilisation = total core-test-time / (cores x schedule length): 1.0
    means fully concurrent testing, 1/n means purely sequential.
    """
    soc = schedule.soc
    busy = sum(
        soc[name].test_time_s for session in schedule for name in session.cores
    )
    capacity = len(soc) * schedule.length_s
    utilisation = busy / capacity
    return (
        f"utilisation {utilisation:.2f} "
        f"({busy:g} core-seconds over {capacity:g} available)"
    )

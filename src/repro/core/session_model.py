"""The paper's low-complexity test-session thermal model (Section 2).

For a test session ``TS`` the model assigns every **active** core an
equivalent thermal resistance built from the *same* resistance formulas
as the full RC simulation (:mod:`repro.thermal.resistances`), rewired
by the paper's three modifications:

* **M1 (steady state only)** — capacitances are dropped; the model is
  purely resistive.
* **M2 (no active-active exchange)** — the lateral resistance between
  two cores tested in the same session is removed: both run hot, so
  their temperature difference (and the heat they exchange) is small.
* **M3 (passive cores are thermal ground)** — a lateral resistance from
  an active core to a passive neighbour now connects straight to
  ambient, because the passive core is assumed to stay at ambient
  temperature for the whole session.

With the actives decoupled from each other (M2) and every remaining
path terminating at ground (M3), the network falls apart into one
independent star per active core, and the equivalent resistance is a
plain parallel combination — the paper's Figure 4.  That is what makes
the model "low-complexity": evaluating a candidate session is O(degree)
arithmetic instead of a linear solve.

On top of ``Rth`` the model defines (paper, end of Section 2):

* the **core thermal characteristic** ``TC_TS(i) = P(i) * Rth_TS(i)`` —
  a temperature-rise estimate for core *i* in session *TS*;
* the **session thermal characteristic**
  ``STC(TS) = max_i TC_TS(i) * P(i) * W(i)`` over the active cores,
  with ``W`` the adaptive weights of :mod:`repro.core.weights`.

The paper's Figures 3-4 draw only *lateral* paths (the vertical path
through the spreader is the one the model is trying to keep from
becoming the only escape route), so the default configuration is
lateral-only; ``include_vertical=True`` adds the per-core vertical
stack in parallel as an ablation.  A fully landlocked core whose
neighbours are all active then has ``Rth = inf`` and an infinite STC —
the scheduler reads that as "never admit this core into this session",
which is exactly the conservative behaviour wanted.

``stc_scale`` normalises STC values so that the STCL axis of the
paper's Figure 5 / Table 1 (20..100) is meaningful for a given SoC; the
paper's own STCL values are tied to their unpublished RC constants, so
the scale is part of the experiment calibration (DESIGN.md,
substitution 3).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Mapping

from ..errors import SchedulingError
from ..floorplan.adjacency import AdjacencyMap
from ..soc.system import SocUnderTest
from ..thermal.package import PackageConfig
from ..thermal.resistances import (
    boundary_edge_resistance,
    lateral_interface_resistance,
    shared_path_resistance,
    vertical_stack_resistance,
)
from ..units import parallel


@dataclass(frozen=True)
class SessionModelConfig:
    """Configuration (and ablation switches) for the session model.

    Attributes
    ----------
    drop_active_active:
        Paper modification M2.  ``False`` keeps the resistance between
        concurrently tested cores, treating the active neighbour as if
        it were grounded — a deliberately *optimistic* ablation that
        under-predicts hot spots (benchmarked in the ablation suite).
    ground_passive:
        Paper modification M3.  ``False`` removes passive-neighbour
        paths entirely instead of grounding them — a *pessimistic*
        ablation (only die-edge and vertical paths remain).
    include_vertical:
        Add the per-core vertical stack (die + TIM + spreading +
        shared spreader/sink path) in parallel with the lateral paths.
        The paper's Figure 4 shows lateral paths only, so the default
        is ``False``.
    stc_scale:
        STC values are divided by this constant; calibrated per SoC so
        the STCL sweep range matches the paper's 20..100 axis.
    """

    drop_active_active: bool = True
    ground_passive: bool = True
    include_vertical: bool = False
    stc_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.stc_scale <= 0.0:
            raise SchedulingError(
                f"stc_scale must be positive, got {self.stc_scale!r}"
            )


#: The configuration matching the paper exactly (all defaults).
PAPER_SESSION_MODEL = SessionModelConfig()


class SessionThermalModel:
    """Evaluates Rth / TC / STC for candidate test sessions of one SoC.

    All lateral and vertical resistances are precomputed once per SoC;
    evaluating a session is then pure parallel-resistance arithmetic.

    Parameters
    ----------
    soc:
        The system under test (supplies floorplan, adjacency, package
        and per-core test powers).
    config:
        Model variant switches (defaults reproduce the paper).
    """

    def __init__(
        self, soc: SocUnderTest, config: SessionModelConfig = PAPER_SESSION_MODEL
    ) -> None:
        self._soc = soc
        self._config = config
        adjacency: AdjacencyMap = soc.adjacency
        package: PackageConfig = soc.package
        floorplan = soc.floorplan

        # Lateral resistance to each neighbour, per core.
        self._neighbour_r: dict[str, dict[str, float]] = {
            name: {} for name in floorplan.block_names
        }
        for interface in adjacency.interfaces:
            block_a = floorplan[interface.block_a]
            block_b = floorplan[interface.block_b]
            resistance = lateral_interface_resistance(
                block_a, block_b, interface, package
            )
            self._neighbour_r[block_a.name][block_b.name] = resistance
            self._neighbour_r[block_b.name][block_a.name] = resistance

        # Die-edge escape paths, combined in parallel per core (they all
        # terminate at the package periphery, i.e. thermal ground in
        # this model).
        self._edge_r: dict[str, float] = {}
        for block in floorplan:
            segments = adjacency.boundary_segments(block.name)
            if segments:
                self._edge_r[block.name] = parallel(
                    *(
                        boundary_edge_resistance(block, segment, package)
                        for segment in segments
                    )
                )
            else:
                self._edge_r[block.name] = math.inf

        # Optional vertical path: per-core stack plus the shared
        # spreader/sink/convection tail.
        shared_tail = shared_path_resistance(package)
        self._vertical_r: dict[str, float] = {
            block.name: vertical_stack_resistance(block, package) + shared_tail
            for block in floorplan
        }

    # -- introspection ----------------------------------------------------------

    @property
    def soc(self) -> SocUnderTest:
        """The SoC this model was built for."""
        return self._soc

    @property
    def config(self) -> SessionModelConfig:
        """The model configuration."""
        return self._config

    def neighbour_resistances(self, core: str) -> Mapping[str, float]:
        """Lateral resistance to each neighbour of *core* (K/W)."""
        try:
            return dict(self._neighbour_r[core])
        except KeyError:
            raise SchedulingError(f"unknown core {core!r}") from None

    def edge_resistance(self, core: str) -> float:
        """Combined die-edge escape resistance of *core* (K/W; inf if landlocked)."""
        try:
            return self._edge_r[core]
        except KeyError:
            raise SchedulingError(f"unknown core {core!r}") from None

    def vertical_resistance(self, core: str) -> float:
        """Vertical stack resistance of *core* incl. the shared tail (K/W)."""
        try:
            return self._vertical_r[core]
        except KeyError:
            raise SchedulingError(f"unknown core {core!r}") from None

    # -- the paper's quantities -----------------------------------------------------

    def equivalent_resistance(self, core: str, active: Iterable[str]) -> float:
        """``Rth_TS(core)``: the paper's equivalent thermal resistance (K/W).

        Parallel combination of the core's escape paths given the
        session's active set (Figure 4 of the paper).  Returns
        ``math.inf`` when no escape path remains (landlocked core with
        every neighbour active, lateral-only model).

        Parameters
        ----------
        core:
            The active core being evaluated (must be in *active*).
        active:
            All cores of the candidate session, including *core*.
        """
        active_set = frozenset(active)
        if core not in active_set:
            raise SchedulingError(
                f"core {core!r} must be part of the active set it is "
                f"evaluated against"
            )
        paths: list[float] = []
        for neighbour, resistance in self._neighbour_r[core].items():
            if neighbour in active_set:
                # Active neighbour: dropped under M2; kept (grounded) in
                # the no-M2 ablation.
                if not self._config.drop_active_active:
                    paths.append(resistance)
            else:
                # Passive neighbour: grounded under M3; absent in the
                # no-M3 ablation.
                if self._config.ground_passive:
                    paths.append(resistance)
        edge = self._edge_r[core]
        if not math.isinf(edge):
            paths.append(edge)
        if self._config.include_vertical:
            paths.append(self._vertical_r[core])
        if not paths:
            return math.inf
        return parallel(*paths)

    def thermal_characteristic(self, core: str, active: Iterable[str]) -> float:
        """``TC_TS(core) = P(core) * Rth_TS(core)`` (kelvin-rise estimate)."""
        rth = self.equivalent_resistance(core, active)
        if math.isinf(rth):
            return math.inf
        return self._soc[core].test_power_w * rth

    def session_thermal_characteristic(
        self,
        active: Iterable[str],
        weights: Mapping[str, float] | None = None,
    ) -> float:
        """``STC(TS) = max_i TC_TS(i) * P(i) * W(i) / stc_scale``.

        Parameters
        ----------
        active:
            The candidate session's cores.  An empty session has
            ``STC = 0`` (nothing dissipates), so any first core whose
            singleton STC fits the limit can seed a session.
        weights:
            Optional per-core weights ``W(i)`` (default all 1.0).

        Returns
        -------
        float
            The STC value; ``math.inf`` when any active core has no
            escape path.
        """
        active_list = list(active)
        if not active_list:
            return 0.0
        if len(set(active_list)) != len(active_list):
            raise SchedulingError(f"duplicate cores in session: {active_list}")
        worst = 0.0
        for core in active_list:
            tc = self.thermal_characteristic(core, active_list)
            if math.isinf(tc):
                return math.inf
            weight = 1.0 if weights is None else weights.get(core, 1.0)
            contribution = tc * self._soc[core].test_power_w * weight
            worst = max(worst, contribution)
        return worst / self._config.stc_scale

    def start_session(
        self, weights: Mapping[str, float] | None = None
    ) -> "SessionGrowth":
        """An incremental accumulator for greedy session growth.

        The scheduler's growth loop evaluates ``STC(S + [c])`` for every
        tentative candidate ``c``; recomputing every member's
        contribution from scratch each time is O(|S| * degree) per
        candidate.  A :class:`SessionGrowth` keeps the members' current
        contributions and, per candidate, recomputes only the cores
        whose escape paths the candidate actually changes (its
        neighbours) — producing **bit-identical** STC values, because
        an unaffected core's contribution depends only on which of its
        own neighbours are active.
        """
        return SessionGrowth(self, weights)

    def core_contributions(
        self,
        active: Iterable[str],
        weights: Mapping[str, float] | None = None,
    ) -> dict[str, float]:
        """Per-core ``TC * P * W / scale`` terms of the STC max (diagnostics)."""
        active_list = list(active)
        contributions: dict[str, float] = {}
        for core in active_list:
            tc = self.thermal_characteristic(core, active_list)
            weight = 1.0 if weights is None else weights.get(core, 1.0)
            if math.isinf(tc):
                contributions[core] = math.inf
            else:
                contributions[core] = (
                    tc * self._soc[core].test_power_w * weight / self._config.stc_scale
                )
        return contributions


class SessionGrowth:
    """Incrementally maintained STC of one growing test session.

    Created by :meth:`SessionThermalModel.start_session`.  Maintains
    the admitted cores and their **unscaled** STC contributions
    (``TC * P * W``); :meth:`stc_if_added` prices a tentative candidate
    by recomputing only the contributions the candidate perturbs — the
    candidate itself and its already-admitted neighbours (adding an
    active core only rewires its direct neighbours' escape paths) —
    and taking the max against the untouched remainder.

    Equivalence: for any admission sequence, :meth:`stc_if_added`
    returns exactly
    ``model.session_thermal_characteristic(session + [candidate], weights)``
    (same float operations on the same operands, so bit-identical);
    the test suite asserts this property over random floorplans.
    """

    def __init__(
        self,
        model: SessionThermalModel,
        weights: Mapping[str, float] | None = None,
    ) -> None:
        self._model = model
        self._weights = weights
        self._active: list[str] = []
        #: Unscaled contribution (TC * P * W) per admitted core.
        self._contrib: dict[str, float] = {}

    @property
    def cores(self) -> tuple[str, ...]:
        """The admitted cores, in admission order."""
        return tuple(self._active)

    def _contribution(self, core: str, active: list[str]) -> float:
        tc = self._model.thermal_characteristic(core, active)
        if math.isinf(tc):
            return math.inf
        weight = 1.0 if self._weights is None else self._weights.get(core, 1.0)
        return tc * self._model.soc[core].test_power_w * weight

    def _affected_members(self, candidate: str) -> list[str]:
        """Admitted cores whose escape paths *candidate* rewires."""
        try:
            neighbours = self._model._neighbour_r[candidate]
        except KeyError:
            raise SchedulingError(f"unknown core {candidate!r}") from None
        return [core for core in self._active if core in neighbours]

    def stc_if_added(self, candidate: str) -> float:
        """``STC(session + [candidate])`` without committing the candidate."""
        if candidate in self._contrib:
            raise SchedulingError(
                f"core {candidate!r} is already part of the session"
            )
        affected = self._affected_members(candidate)
        tentative = self._active + [candidate]
        worst = 0.0
        if self._contrib:
            unchanged = self._contrib.keys() - set(affected)
            if unchanged:
                worst = max(self._contrib[core] for core in unchanged)
        if math.isinf(worst):
            return math.inf
        for core in affected + [candidate]:
            contribution = self._contribution(core, tentative)
            if math.isinf(contribution):
                return math.inf
            worst = max(worst, contribution)
        return worst / self._model.config.stc_scale

    def add(self, candidate: str) -> None:
        """Admit *candidate*, updating the perturbed contributions."""
        if candidate in self._contrib:
            raise SchedulingError(
                f"core {candidate!r} is already part of the session"
            )
        affected = self._affected_members(candidate)
        self._active.append(candidate)
        for core in affected + [candidate]:
            self._contrib[core] = self._contribution(core, self._active)

    def stc(self) -> float:
        """STC of the session as admitted so far (0.0 when empty)."""
        if not self._contrib:
            return 0.0
        worst = max(self._contrib.values())
        if math.isinf(worst):
            return math.inf
        return worst / self._model.config.stc_scale

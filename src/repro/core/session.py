"""Test session and test schedule data model.

A *test session* is a set of cores tested concurrently; a *test
schedule* is an ordered list of sessions that together test every core
exactly once (session-based testing without preemption, the model used
by the paper and by the classic power-constrained scheduling literature
it compares against).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterator, Mapping

from ..errors import SchedulingError
from ..soc.system import SocUnderTest


@dataclass(frozen=True)
class TestSession:
    """One test session: cores tested concurrently.

    Attributes
    ----------
    cores:
        Names of the cores under test, in the order the scheduler added
        them (insertion order matters for reproducing the paper's
        greedy growth, so it is preserved; equality is set-based).
    duration_s:
        Session duration: the longest member test time.
    max_temperature_c:
        Peak simulated steady-state temperature over the session's
        cores (Celsius); ``nan`` until the session has been simulated.
    core_temperatures_c:
        Simulated temperature per active core (empty until simulated).
    """

    #: Not a pytest test class despite the Test- prefix.
    __test__ = False

    cores: tuple[str, ...]
    duration_s: float
    max_temperature_c: float = math.nan
    core_temperatures_c: Mapping[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.cores:
            raise SchedulingError("a test session must contain at least one core")
        if len(set(self.cores)) != len(self.cores):
            raise SchedulingError(f"duplicate cores in session: {self.cores}")
        if self.duration_s <= 0.0:
            raise SchedulingError(
                f"session duration must be positive, got {self.duration_s!r}"
            )

    def __len__(self) -> int:
        return len(self.cores)

    def __contains__(self, name: object) -> bool:
        return name in self.cores

    def core_set(self) -> frozenset[str]:
        """The session's cores as a set (order-independent identity)."""
        return frozenset(self.cores)

    def with_temperatures(
        self, core_temperatures_c: Mapping[str, float]
    ) -> "TestSession":
        """A copy annotated with simulated core temperatures."""
        missing = [c for c in self.cores if c not in core_temperatures_c]
        if missing:
            raise SchedulingError(
                f"temperature annotation missing cores {missing}"
            )
        temps = {c: core_temperatures_c[c] for c in self.cores}
        return TestSession(
            cores=self.cores,
            duration_s=self.duration_s,
            max_temperature_c=max(temps.values()),
            core_temperatures_c=temps,
        )

    def describe(self) -> str:
        """One-line human-readable summary."""
        temp = (
            f"{self.max_temperature_c:.2f} degC"
            if not math.isnan(self.max_temperature_c)
            else "unsimulated"
        )
        return f"[{', '.join(self.cores)}] ({self.duration_s:g} s, max {temp})"


class TestSchedule:
    """An ordered list of test sessions covering a SoC.

    Parameters
    ----------
    sessions:
        The committed sessions, in execution order.
    soc:
        The SoC this schedule tests; used to validate that the schedule
        is a partition of the core set.
    """

    #: Not a pytest test class despite the Test- prefix.
    __test__ = False

    def __init__(self, sessions: list[TestSession], soc: SocUnderTest) -> None:
        self._sessions: tuple[TestSession, ...] = tuple(sessions)
        self._soc = soc
        self._validate_partition()

    def _validate_partition(self) -> None:
        seen: set[str] = set()
        for session in self._sessions:
            overlap = seen & session.core_set()
            if overlap:
                raise SchedulingError(
                    f"cores tested more than once: {sorted(overlap)}"
                )
            seen |= session.core_set()
        missing = set(self._soc.core_names) - seen
        if missing:
            raise SchedulingError(f"cores never tested: {sorted(missing)}")
        extra = seen - set(self._soc.core_names)
        if extra:
            raise SchedulingError(f"schedule names unknown cores: {sorted(extra)}")

    # -- structure ----------------------------------------------------------------

    @property
    def sessions(self) -> tuple[TestSession, ...]:
        """The sessions in execution order."""
        return self._sessions

    @property
    def soc(self) -> SocUnderTest:
        """The SoC under test."""
        return self._soc

    def __len__(self) -> int:
        return len(self._sessions)

    def __iter__(self) -> Iterator[TestSession]:
        return iter(self._sessions)

    # -- metrics -----------------------------------------------------------------

    @property
    def length_s(self) -> float:
        """Total test application time: the paper's *test schedule length*."""
        return math.fsum(s.duration_s for s in self._sessions)

    @property
    def max_temperature_c(self) -> float:
        """Peak simulated temperature over all sessions (nan if unsimulated)."""
        temps = [s.max_temperature_c for s in self._sessions]
        if any(math.isnan(t) for t in temps):
            return math.nan
        return max(temps)

    @property
    def max_concurrency(self) -> int:
        """Largest number of cores tested in one session."""
        return max(len(s) for s in self._sessions)

    def session_of(self, core_name: str) -> TestSession:
        """The session in which the named core is tested."""
        for session in self._sessions:
            if core_name in session:
                return session
        raise SchedulingError(f"core {core_name!r} is not in this schedule")

    def describe(self) -> str:
        """Multi-line human-readable summary."""
        lines = [
            f"Test schedule for {self._soc.name!r}: {len(self)} sessions, "
            f"length {self.length_s:g} s"
        ]
        for i, session in enumerate(self._sessions, start=1):
            lines.append(f"  session {i}: {session.describe()}")
        return "\n".join(lines)

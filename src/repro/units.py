"""Unit conventions, conversions and physical constants.

The library uses SI units internally everywhere:

===============  ======================  =======
quantity         unit                    symbol
===============  ======================  =======
length           metre                   m
area             square metre            m^2
power            watt                    W
power density    watt per square metre   W/m^2
temperature      kelvin (internal)       K
thermal R        kelvin per watt         K/W
thermal C        joule per kelvin        J/K
time             second                  s
===============  ======================  =======

Temperatures cross the public API in **Celsius** (the paper quotes all
its limits and results in Celsius); they are converted to Kelvin at the
boundary with :func:`celsius_to_kelvin` / :func:`kelvin_to_celsius`.
Because the thermal model is linear and only ever deals in temperature
*differences* against ambient, the two scales are interchangeable for
deltas; the helpers exist so that absolute temperatures are never mixed
up.
"""

from __future__ import annotations

import math

#: Offset between the Celsius and Kelvin scales.
KELVIN_OFFSET = 273.15

#: Default ambient temperature used by HotSpot and by this library (Celsius).
#: HotSpot ships with 45 degC as its default ambient, which is also the
#: natural choice for the paper's experiments (their safe schedules sit
#: between 144 degC and 177 degC above a 45 degC ambient).
DEFAULT_AMBIENT_C = 45.0

#: Convenience: one millimetre in metres.
MILLIMETRE = 1e-3

#: Convenience: one micrometre in metres.
MICROMETRE = 1e-6


def celsius_to_kelvin(temp_c: float) -> float:
    """Convert a temperature from Celsius to Kelvin."""
    return temp_c + KELVIN_OFFSET


def kelvin_to_celsius(temp_k: float) -> float:
    """Convert a temperature from Kelvin to Celsius."""
    return temp_k - KELVIN_OFFSET


def mm(value_mm: float) -> float:
    """Convert millimetres to metres (readability helper for layouts)."""
    return value_mm * MILLIMETRE


def mm2(value_mm2: float) -> float:
    """Convert square millimetres to square metres."""
    return value_mm2 * MILLIMETRE * MILLIMETRE


def to_mm(value_m: float) -> float:
    """Convert metres to millimetres (for reporting)."""
    return value_m / MILLIMETRE


def parallel(*resistances: float) -> float:
    """Parallel combination of thermal resistances.

    ``parallel(r1, r2, ..., rn) = 1 / (1/r1 + ... + 1/rn)``

    Infinite resistances (open circuits) are permitted and simply drop
    out of the combination; if *all* inputs are infinite the result is
    ``math.inf``.  Non-positive resistances are rejected because a
    physical thermal resistance is strictly positive.

    This is the algebra used by the paper's equivalent test-session
    thermal model (Figure 4), where the lateral and vertical escape
    paths of an active core combine in parallel.
    """
    if not resistances:
        raise ValueError("parallel() requires at least one resistance")
    total_conductance = 0.0
    for resistance in resistances:
        if resistance <= 0.0:
            raise ValueError(f"thermal resistance must be positive, got {resistance!r}")
        if math.isinf(resistance):
            continue
        total_conductance += 1.0 / resistance
    if total_conductance == 0.0:
        return math.inf
    return 1.0 / total_conductance


def series(*resistances: float) -> float:
    """Series combination of thermal resistances (simple sum).

    Provided for symmetry with :func:`parallel`; validates positivity.
    """
    if not resistances:
        raise ValueError("series() requires at least one resistance")
    for resistance in resistances:
        if resistance <= 0.0:
            raise ValueError(f"thermal resistance must be positive, got {resistance!r}")
    return math.fsum(resistances)


def approx_equal(a: float, b: float, rel_tol: float = 1e-9, abs_tol: float = 1e-12) -> bool:
    """Tolerant float comparison used by validation code paths."""
    return math.isclose(a, b, rel_tol=rel_tol, abs_tol=abs_tol)

"""``repro`` — thermal-safe scheduling from the command line.

The subcommands::

    repro schedule ...   # one SoC, one (TL, STCL) question (paper flow)
    repro solve ...      # one request through any registered solver
    repro batch ...      # a generated fleet of scenarios over a backend
    repro serve ...      # long-lived scheduling service (JSONL over TCP)
    repro route ...      # consistent-hash router over N serve shards
    repro fleet ...      # per-shard health table of a running fleet
    repro submit ...     # send requests to a running service
    repro watch ...      # stream one request's closed-loop run live
    repro report ...     # per-solver summary of JSONL archives
    repro check ...      # repo-specific static analysis (lint rules)

(``repro-schedule`` remains as an alias for ``repro schedule``, and
``python -m repro ...`` works without installed entry points.)

The single-run flow without writing Python:

* pick a SoC: a built-in platform (``--soc alpha15``) or your own
  HotSpot ``.flp`` plus a power CSV (``--flp chip.flp --powers p.csv``);
* pick the limits: ``--tl`` (Celsius) and ``--stcl``, or let the tool
  derive an STCL scale from the SoC's own regime (``--auto-stcl``);
* get the schedule, a Gantt chart, a thermal audit, and (optionally)
  a JSON archive and per-session heatmaps.

The power CSV has a header and one row per core::

    core,test_w,functional_w
    cpu0,12.5,3.1

Examples::

    repro schedule --soc alpha15 --tl 165 --stcl 60 --gantt --save run.json
    repro schedule --flp my.flp --powers my.csv --tl 150 --auto-stcl 2.0
    repro solve --soc alpha15 --tl 165 --solver power_constrained
    repro solve --kind grid --rows 3 --cols 4 --tl-headroom 1.2 --stcl-headroom 2
    repro batch --count 100 --backend process --solver sequential --out fleet.jsonl
    repro serve --backend process --archive served.jsonl
    repro submit --soc alpha15 --tl 165 --stcl 60 --repeat 8 --stats
    repro report fleet.jsonl served.jsonl
"""

from __future__ import annotations

import argparse
import csv
import sys
from pathlib import Path

from .core.gantt import render_gantt, render_utilisation
from .core.safety import audit_schedule
from .core.scheduler import SchedulerConfig, ThermalAwareScheduler
from .core.serialize import save_result
from .core.session_model import SessionModelConfig, SessionThermalModel
from .errors import ReproError
from .floorplan.hotspot_format import read_flp
from .power.profile import CorePower, PowerProfile
from .soc.library import (
    ALPHA15_STC_SCALE,
    alpha15_soc,
    hypothetical7_soc,
    worked_example6_soc,
)
from .soc.system import SocUnderTest
from .thermal.heatmap import render_heatmap
from .thermal.simulator import ThermalSimulator

#: Built-in SoCs selectable by name, with their calibrated STC scale.
BUILTIN_SOCS = {
    "alpha15": (alpha15_soc, ALPHA15_STC_SCALE),
    "hypothetical7": (hypothetical7_soc, 1.0),
    "worked-example6": (worked_example6_soc, 1.0),
}


def load_power_csv(path: Path) -> PowerProfile:
    """Read a ``core,test_w,functional_w`` CSV into a power profile."""
    try:
        with path.open() as handle:
            reader = csv.DictReader(handle)
            required = {"core", "test_w", "functional_w"}
            if reader.fieldnames is None or not required <= set(reader.fieldnames):
                raise ReproError(
                    f"power CSV must have columns {sorted(required)}, "
                    f"got {reader.fieldnames}"
                )
            cores = [
                CorePower(
                    row["core"],
                    functional_w=float(row["functional_w"]),
                    test_w=float(row["test_w"]),
                )
                for row in reader
            ]
    except OSError as exc:
        raise ReproError(f"cannot read power CSV {path}: {exc}") from exc
    except ValueError as exc:
        raise ReproError(f"bad number in power CSV {path}: {exc}") from exc
    if not cores:
        raise ReproError(f"power CSV {path} contains no cores")
    return PowerProfile(cores, name=path.stem)


def build_soc(args: argparse.Namespace) -> tuple[SocUnderTest, float]:
    """Resolve the SoC and its default STC scale from the CLI options."""
    if args.soc is not None:
        factory, stc_scale = BUILTIN_SOCS[args.soc]
        return factory(), stc_scale
    if args.flp is None or args.powers is None:
        raise ReproError(
            "either --soc <builtin> or both --flp and --powers are required"
        )
    floorplan = read_flp(args.flp)
    profile = load_power_csv(Path(args.powers))
    soc = SocUnderTest.from_profile(
        floorplan, profile, test_time_s=args.test_time
    )
    return soc, 1.0


def derive_stcl(
    soc: SocUnderTest, model: SessionThermalModel, headroom: float
) -> float:
    """Auto-STCL: *headroom* times the largest singleton STC.

    Guarantees every core is schedulable (the paper's implicit
    precondition) while leaving room for concurrency.
    """
    worst = max(
        model.session_thermal_characteristic([name]) for name in soc.core_names
    )
    return headroom * worst


def main(argv: list[str] | None = None) -> int:
    """Console entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro-schedule",
        description="Generate a thermal-safe SoC test schedule (DATE 2005 flow).",
    )
    source = parser.add_argument_group("SoC selection")
    source.add_argument(
        "--soc", choices=sorted(BUILTIN_SOCS), help="built-in platform"
    )
    source.add_argument("--flp", type=Path, help="HotSpot .flp floorplan file")
    source.add_argument(
        "--powers", type=Path, help="CSV with core,test_w,functional_w"
    )
    source.add_argument(
        "--test-time",
        type=float,
        default=1.0,
        help="per-core test time in seconds (default 1.0)",
    )

    limits = parser.add_argument_group("limits")
    limits.add_argument(
        "--tl", type=float, required=True, help="temperature limit TL (Celsius)"
    )
    limits.add_argument("--stcl", type=float, help="session thermal char. limit")
    limits.add_argument(
        "--auto-stcl",
        type=float,
        metavar="HEADROOM",
        help="derive STCL as HEADROOM x the worst singleton STC",
    )
    limits.add_argument(
        "--include-vertical",
        action="store_true",
        help="include the vertical heat path in the session model "
        "(required for floorplans that do not tile the die)",
    )

    output = parser.add_argument_group("output")
    output.add_argument("--gantt", action="store_true", help="print a Gantt chart")
    output.add_argument(
        "--heatmap",
        action="store_true",
        help="print an ASCII heatmap of the hottest session",
    )
    output.add_argument(
        "--save", type=Path, metavar="JSON", help="archive the result as JSON"
    )
    args = parser.parse_args(argv)

    try:
        soc, stc_scale = build_soc(args)
        model = SessionThermalModel(
            soc,
            SessionModelConfig(
                include_vertical=args.include_vertical, stc_scale=stc_scale
            ),
        )
        simulator = ThermalSimulator(soc.floorplan, soc.package, soc.adjacency)

        if args.stcl is not None:
            stcl = args.stcl
        elif args.auto_stcl is not None:
            stcl = derive_stcl(soc, model, args.auto_stcl)
            print(f"auto-derived STCL = {stcl:.2f}")
        else:
            raise ReproError("one of --stcl or --auto-stcl is required")

        scheduler = ThermalAwareScheduler(
            soc,
            simulator=simulator,
            session_model=model,
            config=SchedulerConfig(),
        )
        result = scheduler.schedule(tl_c=args.tl, stcl=stcl)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    print(result.describe())
    audit = audit_schedule(result.schedule, limit_c=args.tl, simulator=simulator)
    print(audit.describe())
    print(render_utilisation(result.schedule))

    if args.gantt:
        print()
        print(render_gantt(result.schedule, limit_c=args.tl))
    if args.heatmap:
        hottest = max(
            result.schedule.sessions, key=lambda s: s.max_temperature_c
        )
        field = simulator.steady_state(soc.session_power_map(hottest.cores))
        print()
        print(f"heatmap of the hottest session [{', '.join(hottest.cores)}]:")
        print(render_heatmap(soc.floorplan, field))
    if args.save is not None:
        save_result(result, args.save)
        print(f"result archived to {args.save}")
    return 0


def parse_solver_params(pairs: list[str]) -> dict:
    """Parse repeated ``KEY=VALUE`` options into a typed params dict.

    Values are coerced to int, float or bool when they look like one;
    everything else stays a string (solver parameter validation happens
    in the registry, not here).
    """
    params: dict = {}
    for pair in pairs:
        key, sep, raw = pair.partition("=")
        if not sep or not key:
            raise ReproError(
                f"--param expects KEY=VALUE, got {pair!r}"
            )
        value: object = raw
        lowered = raw.lower()
        if lowered in ("true", "false"):
            value = lowered == "true"
        else:
            for cast in (int, float):
                try:
                    value = cast(raw)
                    break
                except ValueError:
                    continue
        params[key] = value
    return params


def add_request_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the shared system/limits/solver options of a request.

    ``repro solve`` (local solve) and ``repro submit`` (solve over the
    service protocol) describe the *same* question; keeping the flags in
    one place keeps the two front doors from drifting.
    """
    from .api import available_solvers

    source = parser.add_argument_group("system selection")
    source.add_argument(
        "--soc",
        choices=sorted(BUILTIN_SOCS),
        help="built-in platform (alternative: describe a scenario with --kind)",
    )
    source.add_argument(
        "--kind",
        choices=["grid", "slicing"],
        help="generated-floorplan scenario family",
    )
    source.add_argument("--rows", type=int, default=3, help="grid rows (default 3)")
    source.add_argument("--cols", type=int, default=3, help="grid cols (default 3)")
    source.add_argument(
        "--blocks", type=int, default=9, help="slicing block count (default 9)"
    )
    source.add_argument(
        "--floorplan-seed", type=int, default=0, help="slicing-tree seed"
    )
    source.add_argument("--power-seed", type=int, default=0, help="power profile seed")
    source.add_argument(
        "--power-scale", type=float, default=1.0, help="power scaling factor"
    )
    source.add_argument(
        "--test-time", type=float, default=1.0, help="per-core test time (s)"
    )

    limits = parser.add_argument_group("limits")
    limits.add_argument("--tl", type=float, help="absolute temperature limit (degC)")
    limits.add_argument(
        "--tl-headroom",
        type=float,
        help="TL as HEADROOM x the hottest singleton rise above ambient (> 1)",
    )
    limits.add_argument("--stcl", type=float, help="absolute STC limit")
    limits.add_argument(
        "--stcl-headroom",
        type=float,
        help="STCL as HEADROOM x the worst singleton STC",
    )
    limits.add_argument(
        "--include-vertical",
        action="store_true",
        help="include the vertical heat path in the session model",
    )

    solver = parser.add_argument_group("solver")
    solver.add_argument(
        "--solver",
        choices=available_solvers(),
        default="thermal_aware",
        help="registered solver (default thermal_aware)",
    )
    solver.add_argument(
        "--param",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="per-solver parameter (repeatable), e.g. --param power_limit_w=45",
    )


def request_from_args(args: argparse.Namespace) -> "ScheduleRequest":
    """Build the :class:`~repro.api.ScheduleRequest` the options describe."""
    from .api import ScheduleRequest
    from .engine import ScenarioSpec

    if (args.soc is None) == (args.kind is None):
        raise ReproError("exactly one of --soc or --kind is required")
    if args.soc is not None:
        soc_name: str | None = args.soc.replace("-", "_")
        scenario = None
    else:
        soc_name = None
        scenario = ScenarioSpec(
            kind=args.kind,
            rows=args.rows,
            cols=args.cols,
            n_blocks=args.blocks,
            floorplan_seed=args.floorplan_seed,
            power_seed=args.power_seed,
            power_scale=args.power_scale,
            test_time_s=args.test_time,
        )
    return ScheduleRequest(
        soc=soc_name,
        scenario=scenario,
        tl_c=args.tl,
        tl_headroom=args.tl_headroom,
        stcl=args.stcl,
        stcl_headroom=args.stcl_headroom,
        solver=args.solver,
        params=parse_solver_params(args.param),
        include_vertical=args.include_vertical,
    )


def solve_main(argv: list[str] | None = None) -> int:
    """``repro solve`` — one request through any registered solver."""
    from .api import Workbench

    parser = argparse.ArgumentParser(
        prog="repro solve",
        description=(
            "Answer one scheduling request through the unified solver API."
        ),
    )
    add_request_arguments(parser)
    output = parser.add_argument_group("output")
    output.add_argument("--gantt", action="store_true", help="print a Gantt chart")
    output.add_argument(
        "--save", type=Path, metavar="JSON", help="archive the result as JSON"
    )
    args = parser.parse_args(argv)

    try:
        request = request_from_args(args)
        report = Workbench().solve(request)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    print(report.describe())
    if args.gantt:
        print()
        print(render_gantt(report.schedule, limit_c=report.tl_c))
    if args.save is not None:
        save_result(report.result, args.save)
        print(f"result archived to {args.save}")
    return 0


def batch_main(argv: list[str] | None = None) -> int:
    """``repro batch`` — schedule a generated scenario fleet."""
    from .api import available_solvers
    from .engine import (
        BatchRunner,
        FleetConfig,
        available_backends,
        generate_fleet,
    )

    parser = argparse.ArgumentParser(
        prog="repro batch",
        description="Generate and schedule a fleet of thermal scenarios.",
    )
    fleet = parser.add_argument_group("fleet")
    fleet.add_argument(
        "--count", type=int, default=100, help="fleet size (default 100)"
    )
    fleet.add_argument("--seed", type=int, default=0, help="fleet RNG seed")
    fleet.add_argument(
        "--no-builtins",
        action="store_true",
        help="generated scenarios only (skip alpha15 etc.)",
    )
    solver_group = parser.add_argument_group("solver")
    solver_group.add_argument(
        "--solver",
        choices=available_solvers(),
        default="thermal_aware",
        help="registered solver every job dispatches to (default thermal_aware)",
    )
    solver_group.add_argument(
        "--param",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="per-solver parameter applied to every job (repeatable)",
    )
    execution = parser.add_argument_group("execution")
    execution.add_argument(
        "--backend",
        choices=available_backends(),
        default="serial",
        help="execution backend (default serial)",
    )
    execution.add_argument(
        "--workers", type=int, help="worker count (default: CPU count)"
    )
    execution.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the shared thermal-model cache",
    )
    output = parser.add_argument_group("output")
    output.add_argument(
        "--out", type=Path, metavar="JSONL", help="archive job records as JSONL"
    )
    output.add_argument(
        "--limit",
        type=int,
        default=10,
        help="per-job summary lines to print (default 10)",
    )
    args = parser.parse_args(argv)

    try:
        if args.count < 1:
            raise ReproError(f"--count must be >= 1, got {args.count}")
        config = FleetConfig(include_builtins=not args.no_builtins)
        jobs = generate_fleet(
            args.count,
            seed=args.seed,
            config=config,
            solver=args.solver,
            solver_params=parse_solver_params(args.param),
        )
        runner = BatchRunner(
            backend=args.backend,
            max_workers=args.workers,
            use_cache=not args.no_cache,
        )
        batch = runner.run(jobs, jsonl_path=args.out)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    print(batch.describe(limit=args.limit))
    if args.out is not None:
        print(f"{batch.n_jobs} job records archived to {args.out}")
    return 0 if not batch.failed else 1


def serve_main(argv: list[str] | None = None) -> int:
    """``repro serve`` — run the long-lived scheduling service."""
    import asyncio
    import signal

    from .obs import open_json_log
    from .service import DEFAULT_PORT, ScheduleServer, ScheduleService

    parser = argparse.ArgumentParser(
        prog="repro serve",
        description=(
            "Serve scheduling requests over the JSONL-over-TCP protocol "
            "until interrupted (SIGINT/SIGTERM drain gracefully)."
        ),
    )
    network = parser.add_argument_group("network")
    network.add_argument("--host", default="127.0.0.1", help="bind address")
    network.add_argument(
        "--port",
        type=int,
        default=DEFAULT_PORT,
        help=f"TCP port (default {DEFAULT_PORT}; 0 picks a free port)",
    )
    execution = parser.add_argument_group("execution")
    execution.add_argument(
        "--backend",
        choices=["serial", "thread", "process"],
        default="thread",
        help="worker-pool backend (default thread)",
    )
    execution.add_argument(
        "--workers", type=int, help="worker-pool maximum (default: CPU count)"
    )
    execution.add_argument(
        "--min-workers",
        type=int,
        help="adaptive-pool floor; below --workers the pool scales with "
        "queue depth (default: fixed at --workers)",
    )
    execution.add_argument(
        "--scale-down-idle",
        type=float,
        default=2.0,
        metavar="S",
        help="quiet seconds before the pool gives back one worker "
        "(default 2.0)",
    )
    execution.add_argument(
        "--queue-size",
        type=int,
        default=128,
        help="job-queue bound before backpressure (default 128)",
    )
    execution.add_argument(
        "--shed-watermark",
        type=int,
        metavar="N",
        help="queue depth past which submits are shed with "
        "ServiceBusyError instead of queued (default: never shed)",
    )
    execution.add_argument(
        "--solve-timeout",
        type=float,
        metavar="S",
        help="per-solve timeout in seconds (default: unbounded)",
    )
    execution.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the shared thermal-model cache",
    )
    execution.add_argument(
        "--coalesce-window-ms",
        type=float,
        default=0.0,
        metavar="MS",
        help="how long the dispatcher lingers for a burst to pile up "
        "before draining the queue into a coalesced batch "
        "(default 0: drain only what is already queued)",
    )
    execution.add_argument(
        "--max-batch",
        type=int,
        default=1,
        metavar="N",
        help="most jobs one worker dispatch may solve as a coalesced "
        "group sharing model builds and GEMMs (default 1: coalescing "
        "off, one job per dispatch)",
    )
    caching = parser.add_argument_group("answer cache")
    caching.add_argument(
        "--answer-cache",
        type=int,
        default=256,
        metavar="N",
        help="answer-cache LRU bound (default 256)",
    )
    caching.add_argument(
        "--answer-ttl",
        type=float,
        default=300.0,
        metavar="S",
        help="answer-cache TTL in seconds; 0 = never expires "
        "(default 300)",
    )
    caching.add_argument(
        "--no-answer-cache",
        action="store_true",
        help="disable the answer cache (every submit solves or dedups)",
    )
    caching.add_argument(
        "--warm-from",
        type=Path,
        metavar="JSONL",
        help="pre-populate the answer cache from a service archive's "
        "ok records at boot",
    )
    output = parser.add_argument_group("output")
    output.add_argument(
        "--archive",
        type=Path,
        metavar="JSONL",
        help="append every served outcome to this JSONL archive",
    )
    observability = parser.add_argument_group("observability")
    observability.add_argument(
        "--log-json",
        metavar="PATH",
        help="append structured JSON request-lifecycle events to this "
        "file ('-' logs to stderr)",
    )
    observability.add_argument(
        "--slow-request-ms",
        type=float,
        metavar="MS",
        help="additionally log a slow_request event with the full phase "
        "trace for requests slower end-to-end than this threshold "
        "(implies stderr JSON logging when --log-json is not given)",
    )
    reactive = parser.add_argument_group("reactive streaming")
    reactive.add_argument(
        "--reactive-elevated",
        type=float,
        metavar="C",
        help="thermal-guard ELEVATED threshold for streamed submits "
        "(needs --reactive-critical; default: derived per request "
        "from its temperature limit)",
    )
    reactive.add_argument(
        "--reactive-critical",
        type=float,
        metavar="C",
        help="thermal-guard CRITICAL threshold (needs "
        "--reactive-elevated)",
    )
    reactive.add_argument(
        "--reactive-hysteresis",
        type=float,
        default=1.0,
        metavar="C",
        help="guard downgrade hysteresis in Celsius (default 1.0)",
    )
    reactive.add_argument(
        "--reactive-chunk",
        type=float,
        default=0.02,
        metavar="S",
        help="closed-loop control interval in simulated seconds "
        "(default 0.02)",
    )
    reactive.add_argument(
        "--reactive-throttle",
        type=float,
        default=0.5,
        metavar="F",
        help="power factor applied while the guard is ELEVATED "
        "(default 0.5)",
    )
    reactive.add_argument(
        "--reactive-dt",
        type=float,
        default=5e-3,
        metavar="S",
        help="virtual-sensor sampling step in seconds (default 0.005)",
    )
    args = parser.parse_args(argv)

    try:
        logger = (
            open_json_log(args.log_json) if args.log_json is not None else None
        )
    except OSError as exc:
        print(f"error: cannot open --log-json: {exc}", file=sys.stderr)
        return 1

    from .reactive import GuardConfig, ReactiveConfig

    if (args.reactive_elevated is None) != (args.reactive_critical is None):
        print(
            "error: --reactive-elevated and --reactive-critical go "
            "together (one without the other leaves the guard half "
            "configured)",
            file=sys.stderr,
        )
        return 1
    reactive_guard = None
    if args.reactive_elevated is not None:
        try:
            reactive_guard = GuardConfig(
                elevated_c=args.reactive_elevated,
                critical_c=args.reactive_critical,
                hysteresis_c=args.reactive_hysteresis,
            )
        except ReproError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1

    async def _serve() -> None:
        service = ScheduleService(
            backend=args.backend,
            max_workers=args.workers,
            min_workers=args.min_workers,
            scale_down_idle_s=args.scale_down_idle,
            shed_watermark=args.shed_watermark,
            use_cache=not args.no_cache,
            queue_size=args.queue_size,
            default_timeout_s=args.solve_timeout,
            archive=args.archive,
            answer_cache_size=0 if args.no_answer_cache else args.answer_cache,
            # Exactly 0 is the documented no-expiry sentinel; negatives
            # fall through to AnswerCache's validation (a typoed sign
            # must not silently mean "serve stale forever").
            answer_ttl_s=None if args.answer_ttl == 0 else args.answer_ttl,
            warm_from=args.warm_from,
            logger=logger,
            slow_request_ms=args.slow_request_ms,
            reactive_guard=reactive_guard,
            reactive_config=ReactiveConfig(
                chunk_s=args.reactive_chunk,
                throttle_factor=args.reactive_throttle,
            ),
            reactive_dt=args.reactive_dt,
            coalesce_window_ms=args.coalesce_window_ms,
            max_batch=args.max_batch,
        )
        await service.start()
        server = ScheduleServer(service, host=args.host, port=args.port)
        await server.start()
        print(
            f"repro service listening on {args.host}:{server.port} "
            f"({service.describe_config()})",
            flush=True,
        )
        stop_event = asyncio.Event()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(sig, stop_event.set)
            except NotImplementedError:  # non-unix event loops
                pass
        try:
            await stop_event.wait()
        finally:
            print("draining...", flush=True)
            await server.stop()
            await service.stop(drain=True)
            print(service.metrics().describe(), flush=True)

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        pass  # loops without signal handlers (drain already attempted)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except OSError as exc:  # port in use, bad bind address
        print(f"error: {exc}", file=sys.stderr)
        return 1
    finally:
        if logger is not None:
            logger.close()
    return 0


def route_main(argv: list[str] | None = None) -> int:
    """``repro route`` — run the fleet router in front of N shards."""
    import asyncio
    import signal

    from .service import DEFAULT_ROUTER_PORT
    from .service.fleet import FleetRouter, RetryPolicy

    parser = argparse.ArgumentParser(
        prog="repro route",
        description=(
            "Route scheduling requests over a fleet of `repro serve` "
            "shards: consistent hashing by request content hash, health "
            "probes with per-shard circuit breakers, and failover along "
            "the ring when a shard is down."
        ),
    )
    network = parser.add_argument_group("network")
    network.add_argument("--host", default="127.0.0.1", help="bind address")
    network.add_argument(
        "--port",
        type=int,
        default=DEFAULT_ROUTER_PORT,
        help=f"TCP port (default {DEFAULT_ROUTER_PORT}; 0 picks a free port)",
    )
    fleet = parser.add_argument_group("fleet")
    fleet.add_argument(
        "--shard",
        action="append",
        required=True,
        dest="shards",
        metavar="HOST:PORT",
        help="a `repro serve` shard address (repeat per shard)",
    )
    fleet.add_argument(
        "--replicas",
        type=int,
        default=128,
        help="virtual-node points per shard on the hash ring (default 128)",
    )
    health = parser.add_argument_group("health")
    health.add_argument(
        "--probe-interval",
        type=float,
        default=1.0,
        metavar="S",
        help="seconds between ping probes of every shard (default 1.0)",
    )
    health.add_argument(
        "--probe-timeout",
        type=float,
        default=2.0,
        metavar="S",
        help="per-probe deadline in seconds (default 2.0)",
    )
    health.add_argument(
        "--failure-threshold",
        type=int,
        default=3,
        metavar="N",
        help="consecutive failures that open a shard's breaker (default 3)",
    )
    health.add_argument(
        "--cooldown",
        type=float,
        default=5.0,
        metavar="S",
        help="open-breaker cooldown before a trial request (default 5.0)",
    )
    health.add_argument(
        "--recovery-threshold",
        type=int,
        default=2,
        metavar="N",
        help="half-open successes that close the breaker (default 2)",
    )
    health.add_argument(
        "--retry-attempts",
        type=int,
        default=2,
        metavar="N",
        help="tries per shard before failing over (default 2)",
    )
    args = parser.parse_args(argv)

    async def _route() -> None:
        router = FleetRouter(
            args.shards,
            host=args.host,
            port=args.port,
            replicas=args.replicas,
            retry_policy=RetryPolicy(
                max_attempts=args.retry_attempts,
                base_delay_s=0.05,
                max_delay_s=0.5,
            ),
            probe_interval_s=args.probe_interval,
            probe_timeout_s=args.probe_timeout,
            failure_threshold=args.failure_threshold,
            cooldown_s=args.cooldown,
            recovery_threshold=args.recovery_threshold,
        )
        await router.start()
        print(
            f"repro router listening on {args.host}:{router.port} "
            f"({router.describe_config()})",
            flush=True,
        )
        stop_event = asyncio.Event()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(sig, stop_event.set)
            except NotImplementedError:  # non-unix event loops
                pass
        try:
            await stop_event.wait()
        finally:
            print("stopping router...", flush=True)
            counters = router.router_counters()
            await router.stop()
            pairs = ", ".join(
                f"{key}={value:.1f}" if isinstance(value, float) else f"{key}={value}"
                for key, value in counters.items()
            )
            print(f"router counters: {pairs}", flush=True)

    try:
        asyncio.run(_route())
    except KeyboardInterrupt:
        pass  # loops without signal handlers (stop already attempted)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except OSError as exc:  # port in use, bad bind address
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0


def fleet_main(argv: list[str] | None = None) -> int:
    """``repro fleet`` — per-shard health and stats of a running fleet."""
    import json

    from .errors import ServiceError
    from .service import DEFAULT_ROUTER_PORT, ServiceClient

    parser = argparse.ArgumentParser(
        prog="repro fleet",
        description=(
            "Fetch the fleet_stats frame from a running `repro route` "
            "(or a plain `repro serve`, which answers as a fleet of one) "
            "and print a per-shard health table plus the aggregate."
        ),
    )
    parser.add_argument("--host", default="127.0.0.1", help="router host")
    parser.add_argument(
        "--port", type=int, default=DEFAULT_ROUTER_PORT, help="router port"
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="print the raw fleet payload as JSON (the CI artifact shape)",
    )
    args = parser.parse_args(argv)

    try:
        with ServiceClient(host=args.host, port=args.port) as client:
            fleet = client.fleet_stats()
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    if args.json:
        print(json.dumps(fleet, indent=2, sort_keys=True))
        return 0
    print(
        f"fleet: {fleet['healthy_shards']}/{fleet['shard_count']} "
        f"shards healthy"
    )
    for name in sorted(fleet["shards"]):
        shard = fleet["shards"][name]
        state = "healthy" if shard.get("healthy") else "unhealthy"
        stats = shard.get("stats") or {}
        line = (
            f"  {name}: {state} (breaker {shard.get('breaker')}, "
            f"{shard.get('probes', 0)} probes, "
            f"{shard.get('probe_failures', 0)} failed)"
        )
        if stats:
            line += (
                f" — {stats.get('submitted', 0)} submitted, "
                f"{stats.get('completed', 0)} ok, "
                f"{stats.get('answer_hits', 0)} answer hits, "
                f"{stats.get('errors', 0)} errors"
            )
        if shard.get("last_error"):
            line += f" [last error: {shard['last_error']}]"
        print(line)
    aggregate = fleet.get("aggregate") or {}
    pairs = ", ".join(
        f"{key}={aggregate[key]}"
        for key in (
            "submitted",
            "completed",
            "answer_hits",
            "deduped",
            "errors",
            "solves_started",
        )
        if key in aggregate
    )
    print(f"aggregate: {pairs}")
    router = fleet.get("router")
    if router:
        print(
            f"router: {router.get('submits', 0)} submits, "
            f"{router.get('routed', 0)} routed, "
            f"{router.get('failovers', 0)} failovers, "
            f"{router.get('unrouted', 0)} unrouted"
        )
    return 0


def submit_main(argv: list[str] | None = None) -> int:
    """``repro submit`` — send requests to a running ``repro serve``."""
    from .api import request_from_dict
    from .core.serialize import load_jsonl
    from .errors import ServiceError
    from .service import DEFAULT_PORT, ServiceClient

    parser = argparse.ArgumentParser(
        prog="repro submit",
        description=(
            "Submit scheduling requests to a running service over TCP "
            "and print the reports."
        ),
    )
    connection = parser.add_argument_group("connection")
    connection.add_argument("--host", default="127.0.0.1", help="service host")
    connection.add_argument(
        "--port", type=int, default=DEFAULT_PORT, help="service port"
    )
    connection.add_argument(
        "--timeout",
        type=float,
        metavar="S",
        help="per-solve timeout enforced by the service",
    )
    add_request_arguments(parser)
    batch = parser.add_argument_group("batch submission")
    batch.add_argument(
        "--requests",
        type=Path,
        metavar="JSONL",
        help="submit every request record in this JSONL file instead of "
        "the one described by the flags",
    )
    batch.add_argument(
        "--repeat",
        type=int,
        default=1,
        help="submit each request N times (identical in-flight requests "
        "are deduplicated server-side; default 1)",
    )
    output = parser.add_argument_group("output")
    output.add_argument(
        "--quiet",
        action="store_true",
        help="one summary line per report instead of the full describe()",
    )
    output.add_argument(
        "--stats",
        action="store_true",
        help="print the service metrics snapshot after the burst",
    )
    args = parser.parse_args(argv)

    try:
        if args.repeat < 1:
            raise ReproError(f"--repeat must be >= 1, got {args.repeat}")
        if args.requests is not None:
            if args.soc is not None or args.kind is not None:
                raise ReproError(
                    "--requests replaces the request-describing flags; "
                    "drop --soc/--kind (the file's records are submitted "
                    "as-is)"
                )
            records = load_jsonl(args.requests)
            if not records:
                raise ReproError(f"no request records in {args.requests}")
            requests = [request_from_dict(record) for record in records]
        else:
            requests = [request_from_args(args)]
        requests = requests * args.repeat
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    failures = 0
    try:
        with ServiceClient(host=args.host, port=args.port) as client:
            results = client.submit_many(
                requests, timeout_s=args.timeout, return_errors=True
            )
            for index, result in enumerate(results):
                if isinstance(result, Exception):
                    failures += 1
                    print(f"[{index}] error: {result}", file=sys.stderr)
                elif args.quiet or len(results) > 1:
                    print(
                        f"[{index}] {result.request.describe()}: "
                        f"length {result.length_s:g} s in "
                        f"{result.n_sessions} sessions, peak "
                        f"{result.max_temperature_c:.2f} degC"
                    )
                else:
                    print(result.describe())
            if args.stats:
                stats = client.stats()
                pairs = ", ".join(
                    f"{key}={value}"
                    for key, value in stats.items()
                    if not isinstance(value, dict)
                )
                print(f"service stats: {pairs}")
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(
        f"{len(requests) - failures}/{len(requests)} requests answered ok",
        flush=True,
    )
    return 0 if failures == 0 else 1


def watch_main(argv: list[str] | None = None) -> int:
    """``repro watch`` — stream one request's closed-loop run live."""
    import json

    from .errors import ServiceError
    from .service import DEFAULT_PORT, ServiceClient

    parser = argparse.ArgumentParser(
        prog="repro watch",
        description=(
            "Submit one request with streaming and render its "
            "progress/event frames live as the service executes the "
            "schedule closed-loop (works against repro serve and "
            "repro route alike)."
        ),
    )
    connection = parser.add_argument_group("connection")
    connection.add_argument("--host", default="127.0.0.1", help="service host")
    connection.add_argument(
        "--port", type=int, default=DEFAULT_PORT, help="service port"
    )
    connection.add_argument(
        "--timeout",
        type=float,
        metavar="S",
        help="per-solve timeout enforced by the service",
    )
    add_request_arguments(parser)
    output = parser.add_argument_group("output")
    output.add_argument(
        "--json",
        action="store_true",
        help="print each frame as one raw JSON line instead of the "
        "rendered timeline",
    )
    args = parser.parse_args(argv)

    try:
        request = request_from_args(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    failed = False
    try:
        with ServiceClient(host=args.host, port=args.port) as client:
            for frame in client.watch(request, timeout_s=args.timeout):
                if args.json:
                    print(json.dumps(frame), flush=True)
                    failed = failed or frame["type"] == "error"
                    continue
                frame_type = frame["type"]
                if frame_type == "progress":
                    print(
                        f"[{frame['seq']:>3}] {frame['stage']} "
                        f"({frame.get('request_hash', '')[:12]})",
                        flush=True,
                    )
                elif frame_type == "event":
                    event = frame["event"]
                    cores = ",".join(event.get("cores") or []) or "-"
                    detail = event.get("detail") or ""
                    print(
                        f"[{frame['seq']:>3}] t={event['time_s']:8.3f} s "
                        f"{event['kind']:<12} session={event.get('session')} "
                        f"cores={cores} guard={event['guard_state']} "
                        f"hottest={event.get('hottest_block')} "
                        f"{event.get('max_temperature_c', 0.0):.2f} degC"
                        + (f"  ({detail})" if detail else ""),
                        flush=True,
                    )
                elif frame_type == "error":
                    failed = True
                    print(
                        f"error: {frame.get('error_type')}: "
                        f"{frame.get('error')}",
                        file=sys.stderr,
                    )
                else:  # terminal report
                    report = frame["report"]
                    result = report.get("result", {})
                    sessions = (result.get("schedule") or {}).get(
                        "sessions", []
                    )
                    print(
                        f"done: length {result.get('length_s'):g} s in "
                        f"{len(sessions)} sessions "
                        f"(cached: {report.get('cached', False)})",
                        flush=True,
                    )
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 1 if failed else 0


def metrics_main(argv: list[str] | None = None) -> int:
    """``repro metrics`` — scrape a running service as Prometheus text."""
    from .errors import ServiceError
    from .service import DEFAULT_PORT, ServiceClient

    parser = argparse.ArgumentParser(
        prog="repro metrics",
        description=(
            "Fetch the telemetry of a running `repro serve` and print it "
            "as Prometheus text exposition (counters, gauges, and "
            "latency summaries with p50/p95/p99 quantiles)."
        ),
    )
    parser.add_argument("--host", default="127.0.0.1", help="service host")
    parser.add_argument(
        "--port", type=int, default=DEFAULT_PORT, help="service port"
    )
    args = parser.parse_args(argv)

    try:
        with ServiceClient(host=args.host, port=args.port) as client:
            print(client.metrics_text(), end="", flush=True)
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0


def top_main(argv: list[str] | None = None) -> int:
    """``repro top`` — live terminal telemetry of a running service."""
    import time as _time

    from .errors import ServiceError
    from .obs import render_top
    from .service import DEFAULT_PORT, ServiceClient

    parser = argparse.ArgumentParser(
        prog="repro top",
        description=(
            "Poll a running `repro serve` and render a live dashboard: "
            "queue depth, worker band, hit rates, and latency "
            "percentiles.  Ctrl-C exits."
        ),
    )
    parser.add_argument("--host", default="127.0.0.1", help="service host")
    parser.add_argument(
        "--port", type=int, default=DEFAULT_PORT, help="service port"
    )
    parser.add_argument(
        "--interval",
        type=float,
        default=2.0,
        metavar="S",
        help="seconds between polls (default 2.0)",
    )
    parser.add_argument(
        "--count",
        type=int,
        default=0,
        metavar="N",
        help="render N frames then exit (default 0: run until Ctrl-C)",
    )
    parser.add_argument(
        "--no-clear",
        action="store_true",
        help="append frames instead of clearing the screen (pipeable)",
    )
    args = parser.parse_args(argv)
    if args.interval <= 0:
        print(
            f"error: --interval must be positive, got {args.interval:g}",
            file=sys.stderr,
        )
        return 1

    rendered = 0
    try:
        with ServiceClient(host=args.host, port=args.port) as client:
            while True:
                frame = render_top(client.stats())
                if not args.no_clear:
                    # Clear screen + home cursor; the frame repaints it.
                    print("\x1b[2J\x1b[H", end="")
                print(frame, flush=True)
                rendered += 1
                if args.count and rendered >= args.count:
                    break
                _time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0


def report_main(argv: list[str] | None = None) -> int:
    """``repro report`` — per-solver summary of JSONL archives."""
    from .service import render_summary_table, summarize_archives

    parser = argparse.ArgumentParser(
        prog="repro report",
        description=(
            "Aggregate batch (`repro batch --out`) and service "
            "(`repro serve --archive`) JSONL archives into a per-solver "
            "summary table."
        ),
    )
    parser.add_argument(
        "archives",
        nargs="+",
        type=Path,
        metavar="JSONL",
        help="one or more archive files (dialects may be mixed)",
    )
    args = parser.parse_args(argv)

    try:
        # tolerate_torn_tail: `repro report` pointed at the live archive
        # of a running `repro serve` races its appender — a half-written
        # final record is an append in flight, not corruption.
        summaries = summarize_archives(
            args.archives, empty_ok=True, tolerate_torn_tail=True
        )
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if not summaries:
        # No records yet is a state, not a mistake: a freshly booted
        # `repro serve --archive` creates the file before its first
        # request resolves.  Say so and exit cleanly instead of
        # erroring (or printing a headers-only table).
        print(
            "no records in "
            + ", ".join(str(p) for p in args.archives)
            + " (nothing has been archived yet)"
        )
        return 0
    print(render_summary_table(summaries))
    total = sum(s.jobs for s in summaries)
    errors = sum(s.errors for s in summaries)
    print(
        f"{total} records over {len(summaries)} solvers, "
        f"{errors} errors ({errors / total * 100:.0f}%)"
    )
    return 0


def check_main(argv: list[str] | None = None) -> int:
    """``repro check`` — the codebase-aware static-analysis pass.

    Exit codes: 0 when clean against the baseline, 1 when new findings
    (or an analysis error) exist, 2 on usage errors — the same shape as
    the other subcommands, so CI can gate on it directly.
    """
    from .analysis import Project, available_rules, run_check
    from .analysis.baseline import DEFAULT_BASELINE_NAME, Baseline
    from .analysis.output import render_json, render_text
    from .errors import AnalysisError

    parser = argparse.ArgumentParser(
        prog="repro check",
        description=(
            "Run the repro-specific static-analysis rules (async-blocking, "
            "lock-discipline, codec-drift, solver-contract, units-boundary) "
            "over the package sources, ratcheted against a committed "
            "baseline of known findings."
        ),
    )
    parser.add_argument(
        "root",
        nargs="?",
        type=Path,
        default=None,
        metavar="PACKAGE_DIR",
        help=(
            "the repro package directory to analyse "
            "(default: the installed package being run)"
        ),
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (json is the CI artifact shape)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        metavar="PATH",
        help=(
            f"baseline file (default: ./{DEFAULT_BASELINE_NAME} when it "
            f"exists, else no baseline)"
        ),
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help=(
            "rewrite the baseline to exactly the current findings "
            "(retires stale entries; requires --baseline or an existing "
            "default baseline path)"
        ),
    )
    parser.add_argument(
        "--select",
        action="append",
        metavar="RULE",
        help="run only these rules (repeatable)",
    )
    parser.add_argument(
        "--ignore",
        action="append",
        metavar="RULE",
        help="skip these rules (repeatable)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list registered rules and exit",
    )
    parser.add_argument(
        "--verbose",
        action="store_true",
        help="also print baselined (known-debt) findings in text format",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in available_rules():
            print(f"{rule.name:16s} {rule.description}")
        return 0

    package_root = args.root
    if package_root is None:
        package_root = Path(__file__).resolve().parent
    baseline_path = args.baseline
    if baseline_path is None:
        default = Path(DEFAULT_BASELINE_NAME)
        if default.exists() or args.update_baseline:
            baseline_path = default

    try:
        project = Project.load(package_root)
        baseline = (
            Baseline.load(baseline_path) if baseline_path is not None else None
        )
        result = run_check(
            project,
            select=args.select,
            ignore=args.ignore,
            baseline=baseline,
        )
    except AnalysisError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    if args.update_baseline:
        from .analysis.baseline import Baseline as _Baseline

        _Baseline.from_findings(result.findings).save(baseline_path)
        print(
            f"baseline {baseline_path} updated with "
            f"{len(result.findings)} findings"
        )
        return 0

    if args.format == "json":
        print(render_json(result))
    else:
        print(render_text(result, verbose=args.verbose))
    return 0 if result.ok else 1


#: ``repro`` subcommands.
COMMANDS = {
    "schedule": main,
    "solve": solve_main,
    "batch": batch_main,
    "serve": serve_main,
    "route": route_main,
    "fleet": fleet_main,
    "submit": submit_main,
    "watch": watch_main,
    "metrics": metrics_main,
    "top": top_main,
    "report": report_main,
    "check": check_main,
}


def _exit_quietly_on_broken_pipe() -> int:
    """Handle a downstream consumer (e.g. ``| head``) closing stdout.

    Redirects stdout to devnull so the interpreter-shutdown flush does
    not raise a second time, and returns the conventional
    128+SIGPIPE exit code.
    """
    import os

    os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
    return 128 + 13


def repro_main(argv: list[str] | None = None) -> int:
    """Console entry point of the ``repro`` umbrella command."""
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    usage = (
        f"usage: repro {{{','.join(COMMANDS)}}} ...\n"
        f"  repro schedule --help   one SoC, one (TL, STCL) question\n"
        f"  repro solve --help      one request through any registered solver\n"
        f"  repro batch --help      schedule a generated scenario fleet\n"
        f"  repro serve --help      run the async scheduling service (TCP)\n"
        f"  repro route --help      route a sharded fleet of services\n"
        f"  repro fleet --help      per-shard health table of a fleet\n"
        f"  repro submit --help     send requests to a running service\n"
        f"  repro watch --help      stream one request's closed-loop run live\n"
        f"  repro metrics --help    scrape a running service (Prometheus text)\n"
        f"  repro top --help        live telemetry dashboard of a service\n"
        f"  repro report --help     per-solver summary of JSONL archives\n"
        f"  repro check --help      repo-specific static analysis (lints)"
    )
    if not argv or argv[0] in ("-h", "--help"):
        print(usage)
        return 0 if argv else 2
    command = COMMANDS.get(argv[0])
    if command is None:
        print(f"error: unknown command {argv[0]!r}\n{usage}", file=sys.stderr)
        return 2
    try:
        return command(argv[1:])
    except BrokenPipeError:
        return _exit_quietly_on_broken_pipe()


def schedule_entry(argv: list[str] | None = None) -> int:
    """Console entry point of the ``repro-schedule`` alias."""
    try:
        return main(argv)
    except BrokenPipeError:
        return _exit_quietly_on_broken_pipe()


if __name__ == "__main__":
    sys.exit(repro_main())

"""repro — thermal-safe SoC test scheduling.

A production-quality reproduction of *"Rapid generation of thermal-safe
test schedules"* (Rosinger, Al-Hashimi, Chakrabarty — DATE 2005),
including every substrate the paper depends on:

* a floorplan geometry kernel with HotSpot ``.flp`` I/O
  (:mod:`repro.floorplan`);
* a block-level RC thermal simulator, steady-state and transient — the
  HotSpot stand-in (:mod:`repro.thermal`);
* test power modelling (:mod:`repro.power`) and SoC descriptions
  (:mod:`repro.soc`);
* the paper's contribution: the test-session thermal model and the
  thermal-aware scheduling algorithm, plus the power-constrained
  baselines it argues against (:mod:`repro.core`);
* experiment drivers regenerating every figure and table
  (:mod:`repro.experiments`).

* the batch engine: scenario fleets, a shared thermal-model cache and
  parallel execution backends (:mod:`repro.engine`).

Quickstart::

    from repro import alpha15_soc, ThermalAwareScheduler

    soc = alpha15_soc()
    result = ThermalAwareScheduler(soc).schedule(tl_c=155.0, stcl=60.0)
    print(result.describe())

Batch quickstart::

    from repro import BatchRunner, generate_fleet

    batch = BatchRunner(backend="process").run(generate_fleet(100, seed=0))
    print(batch.describe())
"""

from .core import (
    PowerConstrainedConfig,
    PowerConstrainedScheduler,
    ScheduleResult,
    SchedulerConfig,
    SessionModelConfig,
    SessionThermalModel,
    TestSchedule,
    TestSession,
    ThermalAwareScheduler,
    audit_schedule,
    sequential_schedule,
)
from .errors import (
    CoreThermalViolationError,
    FloorplanError,
    GeometryError,
    PowerModelError,
    ReproError,
    ScheduleInfeasibleError,
    SchedulingError,
    SolverError,
    ThermalModelError,
)
from .engine import (
    BatchResult,
    BatchRunner,
    FleetConfig,
    JobResult,
    JobSpec,
    ScenarioSpec,
    ThermalModelCache,
    available_backends,
    generate_fleet,
    generate_scenarios,
)
from .floorplan import Floorplan, Rect, alpha15, hypothetical7, worked_example6
from .power import PowerProfile, generate_power_profile
from .soc import (
    CoreUnderTest,
    SocUnderTest,
    alpha15_soc,
    grid_soc,
    hypothetical7_soc,
    worked_example6_soc,
)
from .thermal import PackageConfig, TemperatureField, ThermalSimulator

__version__ = "1.0.0"

__all__ = [
    "BatchResult",
    "BatchRunner",
    "CoreThermalViolationError",
    "CoreUnderTest",
    "FleetConfig",
    "Floorplan",
    "FloorplanError",
    "GeometryError",
    "JobResult",
    "JobSpec",
    "PackageConfig",
    "PowerConstrainedConfig",
    "PowerConstrainedScheduler",
    "PowerModelError",
    "PowerProfile",
    "Rect",
    "ReproError",
    "ScenarioSpec",
    "ScheduleInfeasibleError",
    "ScheduleResult",
    "SchedulerConfig",
    "SchedulingError",
    "SessionModelConfig",
    "SessionThermalModel",
    "SocUnderTest",
    "SolverError",
    "TemperatureField",
    "TestSchedule",
    "TestSession",
    "ThermalAwareScheduler",
    "ThermalModelCache",
    "ThermalModelError",
    "ThermalSimulator",
    "alpha15",
    "alpha15_soc",
    "audit_schedule",
    "available_backends",
    "generate_fleet",
    "generate_power_profile",
    "generate_scenarios",
    "grid_soc",
    "hypothetical7",
    "hypothetical7_soc",
    "sequential_schedule",
    "worked_example6",
    "worked_example6_soc",
    "__version__",
]

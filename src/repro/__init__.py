"""repro — thermal-safe SoC test scheduling.

A production-quality reproduction of *"Rapid generation of thermal-safe
test schedules"* (Rosinger, Al-Hashimi, Chakrabarty — DATE 2005),
including every substrate the paper depends on:

* a floorplan geometry kernel with HotSpot ``.flp`` I/O
  (:mod:`repro.floorplan`);
* a block-level RC thermal simulator, steady-state and transient — the
  HotSpot stand-in (:mod:`repro.thermal`);
* test power modelling (:mod:`repro.power`) and SoC descriptions
  (:mod:`repro.soc`);
* the paper's contribution: the test-session thermal model and the
  thermal-aware scheduling algorithm, plus the power-constrained
  baselines it argues against (:mod:`repro.core`);
* experiment drivers regenerating every figure and table
  (:mod:`repro.experiments`).

* the batch engine: scenario fleets, a shared thermal-model cache and
  parallel execution backends (:mod:`repro.engine`).

* the unified solver API: :class:`ScheduleRequest` problem specs, a
  solver registry and the :class:`Workbench` facade (:mod:`repro.api`).

* the async scheduling service: a bounded job queue, a worker pool with
  in-flight request deduplication and a JSONL-over-TCP wire protocol
  (:mod:`repro.service`, ``repro serve`` / ``repro submit``).

Quickstart (the unified solver API — one front door for every
scheduler)::

    from repro import ScheduleRequest, solve

    report = solve(ScheduleRequest(soc="alpha15", tl_c=165.0, stcl=60.0))
    baseline = solve(
        ScheduleRequest(soc="alpha15", tl_c=165.0, solver="power_constrained")
    )
    print(report.describe(), baseline.hot_spot_rate)

Batch quickstart::

    from repro import BatchRunner, generate_fleet

    batch = BatchRunner(backend="process").run(generate_fleet(100, seed=0))
    print(batch.describe())
"""

import importlib as _importlib
import warnings as _warnings

from .api import (
    ScheduleRequest,
    SolveReport,
    Solver,
    Workbench,
    available_solvers,
    get_solver,
    register_solver,
    solve,
)
from .core import (
    ScheduleResult,
    SchedulerConfig,
    SessionModelConfig,
    SessionThermalModel,
    TestSchedule,
    TestSession,
    audit_schedule,
)
from .errors import (
    CoreThermalViolationError,
    FloorplanError,
    GeometryError,
    PowerModelError,
    ProtocolError,
    ReproError,
    RequestError,
    ScheduleInfeasibleError,
    SchedulingError,
    ServiceBusyError,
    ServiceClosedError,
    ServiceError,
    SolverError,
    ThermalModelError,
)
from .engine import (
    BatchResult,
    BatchRunner,
    FleetConfig,
    JobResult,
    JobSpec,
    ScenarioSpec,
    ThermalModelCache,
    available_backends,
    generate_fleet,
    generate_scenarios,
)
from .floorplan import Floorplan, Rect, alpha15, hypothetical7, worked_example6
from .power import PowerProfile, generate_power_profile
from .service import (
    ReportArchive,
    ScheduleServer,
    ScheduleService,
    ServiceClient,
)
from .soc import (
    CoreUnderTest,
    SocUnderTest,
    alpha15_soc,
    grid_soc,
    hypothetical7_soc,
    worked_example6_soc,
)
from .thermal import (
    BlockTemperatureField,
    PackageConfig,
    ReducedSteadyOperator,
    TemperatureField,
    ThermalSimulator,
)

__version__ = "1.0.0"

#: Scheduler entry points kept importable from the package root for
#: backwards compatibility, but deprecated in favour of the unified
#: solver API (build a ScheduleRequest, call solve()).  Served lazily
#: via module __getattr__ so each access carries a DeprecationWarning;
#: the implementation classes themselves remain first-class citizens at
#: their canonical homes under repro.core.  Deliberately absent from
#: __all__ so `from repro import *` stays warning-free.
_DEPRECATED_SCHEDULER_EXPORTS = {
    "ThermalAwareScheduler": ("repro.core.scheduler", "ThermalAwareScheduler"),
    "PowerConstrainedScheduler": ("repro.core.baselines", "PowerConstrainedScheduler"),
    "PowerConstrainedConfig": ("repro.core.baselines", "PowerConstrainedConfig"),
    "sequential_schedule": ("repro.core.baselines", "sequential_schedule"),
}


def __getattr__(name: str):
    target = _DEPRECATED_SCHEDULER_EXPORTS.get(name)
    if target is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    module_name, attr = target
    _warnings.warn(
        f"importing {name} from the repro package root is deprecated; "
        f"route scheduling through the unified solver API "
        f"(repro.solve(ScheduleRequest(...))) or import the class from "
        f"its canonical home, {module_name}.{attr}",
        DeprecationWarning,
        stacklevel=2,
    )
    return getattr(_importlib.import_module(module_name), attr)


__all__ = [
    "BatchResult",
    "BatchRunner",
    "BlockTemperatureField",
    "CoreThermalViolationError",
    "CoreUnderTest",
    "FleetConfig",
    "Floorplan",
    "FloorplanError",
    "GeometryError",
    "JobResult",
    "JobSpec",
    "PackageConfig",
    "PowerModelError",
    "PowerProfile",
    "ProtocolError",
    "Rect",
    "ReducedSteadyOperator",
    "ReportArchive",
    "ReproError",
    "RequestError",
    "ScenarioSpec",
    "ScheduleInfeasibleError",
    "ScheduleRequest",
    "ScheduleResult",
    "ScheduleServer",
    "ScheduleService",
    "SchedulerConfig",
    "SchedulingError",
    "ServiceBusyError",
    "ServiceClient",
    "ServiceClosedError",
    "ServiceError",
    "SessionModelConfig",
    "SessionThermalModel",
    "SocUnderTest",
    "SolveReport",
    "Solver",
    "SolverError",
    "TemperatureField",
    "TestSchedule",
    "TestSession",
    "ThermalModelCache",
    "ThermalModelError",
    "ThermalSimulator",
    "Workbench",
    "alpha15",
    "alpha15_soc",
    "audit_schedule",
    "available_backends",
    "available_solvers",
    "generate_fleet",
    "generate_power_profile",
    "generate_scenarios",
    "get_solver",
    "grid_soc",
    "hypothetical7",
    "hypothetical7_soc",
    "register_solver",
    "solve",
    "worked_example6",
    "worked_example6_soc",
    "__version__",
]

"""Observability primitives: tracing, histograms, logging, rendering.

The measurement substrate of the scheduling service (and of every later
performance PR that has to prove itself):

* :mod:`trace` — :class:`RequestTrace` / :func:`trace_request`, named
  monotonic-clock phases carried on reports as the ``timings`` field;
* :mod:`histogram` — :class:`Histogram` / :class:`HistogramRegistry`,
  fixed-bucket streaming latency histograms with interpolated
  p50/p95/p99 snapshots;
* :mod:`log` — :class:`JsonLogger`, one-JSON-object-per-line event
  logging for the request lifecycle trail;
* :mod:`prometheus` — text-exposition rendering behind the ``metrics``
  wire frame and ``repro metrics``;
* :mod:`top` — the ``repro top`` dashboard renderer.

Everything here is dependency-free and importable on its own; the
service decides *what* to measure, this package knows *how*.
"""

from .histogram import (
    DEFAULT_LATENCY_BOUNDS,
    Histogram,
    HistogramRegistry,
)
from .log import JsonLogger, open_json_log
from .prometheus import (
    MetricFamily,
    counter_family,
    gauge_family,
    info_family,
    render_families,
    summary_family,
)
from .top import format_duration, render_top
from .trace import RequestTrace, trace_request

__all__ = [
    "DEFAULT_LATENCY_BOUNDS",
    "Histogram",
    "HistogramRegistry",
    "JsonLogger",
    "MetricFamily",
    "RequestTrace",
    "counter_family",
    "format_duration",
    "gauge_family",
    "info_family",
    "open_json_log",
    "render_families",
    "render_top",
    "summary_family",
    "trace_request",
]

"""Text rendering for ``repro top`` — a live service dashboard.

:func:`render_top` turns one stats-frame payload
(:meth:`repro.service.service.ServiceMetrics.to_dict`) into a terminal
screen: queue-depth bar, worker band, hit rates and the latency
percentile table.  It is a pure function of the stats dict, so the CLI
loop stays trivial and tests render known dicts without a server.
"""

from __future__ import annotations

from typing import Any, Mapping

#: Latency families shown in the table, in display order.
_LATENCY_ROWS: tuple[tuple[str, str], ...] = (
    ("queue_wait", "queue wait"),
    ("solve", "solve"),
    ("e2e", "end-to-end"),
    ("answer_hit", "answer hit"),
    ("archive_append", "archive append"),
)


def _bar(value: int, total: int, width: int = 24) -> str:
    """A ``[####----]`` utilisation bar (total 0 renders empty)."""
    filled = 0
    if total > 0:
        filled = min(width, round(width * value / total))
    return "[" + "#" * filled + "-" * (width - filled) + "]"


def format_duration(seconds: float) -> str:
    """Human duration: ``42 s``, ``3.5 min``, ``2.1 h``."""
    if seconds < 120.0:
        return f"{seconds:.0f} s"
    if seconds < 7200.0:
        return f"{seconds / 60.0:.1f} min"
    return f"{seconds / 3600.0:.1f} h"


def _format_ms(value: "float | None") -> str:
    if value is None:
        return "-"
    ms = value * 1e3
    if ms >= 1000.0:
        return f"{ms / 1e3:.2f}s"
    if ms >= 100.0:
        return f"{ms:.0f}ms"
    return f"{ms:.2f}ms"


def _rate(part: int, whole: int) -> str:
    return f"{part / whole * 100.0:.0f}%" if whole else "-"


def render_top(stats: Mapping[str, Any]) -> str:
    """One dashboard screen from one stats-frame payload."""
    lines = [
        (
            f"repro top — backend {stats.get('backend', '?')!r}, "
            f"up {format_duration(float(stats.get('uptime_s', 0.0)))}, "
            f"{float(stats.get('requests_per_s', 0.0)):.1f} req/s"
        )
    ]

    depth = int(stats.get("queue_depth", 0))
    capacity = int(stats.get("queue_capacity", 0))
    lines.append(
        f"queue   {_bar(depth, capacity)} {depth}/{capacity}"
        f"  in-flight {stats.get('in_flight', 0)}"
    )
    current = int(stats.get("current_workers", 0))
    workers = int(stats.get("workers", 0))
    minimum = int(stats.get("min_workers", 0))
    lines.append(
        f"workers {_bar(current, workers)} {current}/{workers}"
        f" (floor {minimum}, +{stats.get('scale_ups', 0)}"
        f"/-{stats.get('scale_downs', 0)} scaling)"
    )

    submitted = int(stats.get("submitted", 0))
    lines.append(
        f"traffic {submitted} submitted: "
        f"{stats.get('answer_hits', 0)} answer hits "
        f"({_rate(int(stats.get('answer_hits', 0)), submitted)}), "
        f"{stats.get('deduped', 0)} deduped "
        f"({_rate(int(stats.get('deduped', 0)), submitted)}), "
        f"{stats.get('completed', 0)} ok, {stats.get('errors', 0)} errors, "
        f"{stats.get('rejected', 0)} rejected"
    )
    solves = int(stats.get("solves_started", 0))
    lines.append(
        f"solves  {solves} started / {stats.get('solves_completed', 0)} "
        f"done, {stats.get('cache_hits', 0)} model-cache hits "
        f"({_rate(int(stats.get('cache_hits', 0)), solves)})"
    )
    coalesced = int(stats.get("coalesced_solves", 0))
    if coalesced:
        batches = int(stats.get("coalesced_batches", 0))
        batch_size = (stats.get("latency") or {}).get("batch_size") or {}
        p50 = batch_size.get("p50")
        sized = "" if p50 is None else f", p50 size {p50:g}"
        lines.append(
            f"batches {coalesced} solves coalesced "
            f"({_rate(coalesced, solves)}) into {batches} "
            f"group dispatches{sized}"
        )

    latency = stats.get("latency")
    if latency:
        lines.append("")
        lines.append(
            f"{'latency':<16}{'p50':>9}{'p95':>9}{'p99':>9}{'samples':>9}"
        )
        for key, label in _LATENCY_ROWS:
            snap = latency.get(key)
            if not snap or not snap.get("count"):
                continue
            lines.append(
                f"{label:<16}"
                f"{_format_ms(snap.get('p50')):>9}"
                f"{_format_ms(snap.get('p95')):>9}"
                f"{_format_ms(snap.get('p99')):>9}"
                f"{snap['count']:>9}"
            )

    answer_cache = stats.get("answer_cache")
    if answer_cache:
        lines.append(
            f"answers {answer_cache.get('entries', 0)} cached, "
            f"{answer_cache.get('hits', 0)} hits / "
            f"{answer_cache.get('misses', 0)} misses, "
            f"{answer_cache.get('expirations', 0)} expired, "
            f"{answer_cache.get('warmed', 0)} warmed"
        )
    cache = stats.get("cache")
    if cache:
        lines.append(
            f"models  {cache.get('entries', 0)} cached, "
            f"{cache.get('hits', 0)} hits / {cache.get('misses', 0)} misses"
        )
    return "\n".join(lines)

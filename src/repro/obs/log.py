"""Structured JSON logging: one event, one JSON object, one line.

:class:`JsonLogger` writes machine-parseable event lines — the service's
request admitted/deduped/shed/completed/timed-out trail — without
touching the stdlib ``logging`` tree (no global state, no handler
surprises inside a long-lived asyncio process).  Each line is a single
JSON object with a ``ts`` wall-clock timestamp and an ``event`` name,
followed by whatever fields the caller attaches::

    {"ts": 1754650000.123456, "event": "request_completed", "request_hash": "...", ...}

The writer is thread-safe (archive appends and zombie-solve callbacks
run off the event loop) and swallows I/O errors: a full disk must not
take the service down, exactly like the archive's error policy.
"""

from __future__ import annotations

import json
import sys
import threading
import time
from pathlib import Path
from typing import Any, Callable, IO


class JsonLogger:
    """Thread-safe one-object-per-line JSON event writer.

    Parameters
    ----------
    stream:
        Destination text stream (default ``sys.stderr``, which keeps
        event lines out of the CLI's stdout contract).
    clock:
        Wall-clock source for the ``ts`` field; injectable for
        deterministic tests.
    """

    def __init__(
        self,
        stream: IO[str] | None = None,
        *,
        clock: Callable[[], float] = time.time,
        _owns_stream: bool = False,
    ) -> None:
        self._stream = stream if stream is not None else sys.stderr  # guarded-by: _lock
        self._clock = clock
        self._lock = threading.Lock()
        self._owns_stream = _owns_stream

    def log(self, event: str, **fields: Any) -> None:
        """Emit one event line; unencodable values fall back to repr."""
        record: dict[str, Any] = {"ts": round(self._clock(), 6), "event": event}
        record.update(fields)
        try:
            line = json.dumps(record, separators=(",", ":"), default=repr)
        except (TypeError, ValueError):
            return  # a malformed field must not crash the caller
        with self._lock:
            try:
                self._stream.write(line + "\n")
                self._stream.flush()
            except (OSError, ValueError):
                pass  # closed/full destination: drop the event, not the service

    def close(self) -> None:
        """Close the destination if this logger opened it.

        Taken under the lock so a close cannot land between another
        thread's write and flush.
        """
        if self._owns_stream:
            with self._lock:
                try:
                    self._stream.close()
                except OSError:
                    pass


def open_json_log(path: "str | Path | None") -> JsonLogger:
    """A :class:`JsonLogger` for *path* (``None`` or ``"-"`` = stderr).

    File destinations are opened in append mode with line buffering, so
    restarted services extend their event trail instead of truncating
    it.
    """
    if path is None or str(path) == "-":
        return JsonLogger()
    handle = Path(path).open("a", buffering=1)
    return JsonLogger(handle, _owns_stream=True)

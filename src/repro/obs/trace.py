"""Lightweight request-lifecycle tracing: named phases on one clock.

A :class:`RequestTrace` accumulates named phase durations against an
injectable monotonic clock (``time.perf_counter`` by default; tests pass
fakes and never sleep).  It is deliberately minimal — a dict of floats
plus a context manager — because its output has to ride on every
:class:`~repro.api.SolveReport` (the ``timings`` field) and cross the
wire as plain JSON.

Usage::

    with trace_request() as trace:
        with trace.phase("model_build"):
            ...
        with trace.phase("solver"):
            ...
    trace.timings  # {"model_build": ..., "solver": ..., "total": ...}

Re-entering a phase name accumulates (a solve that resolves two limits
charges both resolutions to ``limit_resolve``), so phase sums stay
comparable across requests with different control flow.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Callable, Iterator


class RequestTrace:
    """Phase-duration accumulator for one request.

    Parameters
    ----------
    clock:
        Monotonic time source; seconds as float.  Injectable so tests
        assert exact durations without sleeping.
    """

    __slots__ = ("_clock", "_started", "_timings")

    def __init__(
        self, clock: Callable[[], float] = time.perf_counter
    ) -> None:
        self._clock = clock
        self._started = clock()
        self._timings: dict[str, float] = {}

    @property
    def timings(self) -> dict[str, float]:
        """The accumulated phase durations (a copy; seconds)."""
        return dict(self._timings)

    def elapsed_s(self) -> float:
        """Seconds since the trace was created."""
        return self._clock() - self._started

    def record(self, name: str, duration_s: float) -> None:
        """Add *duration_s* to the named phase (creating it at 0)."""
        self._timings[name] = self._timings.get(name, 0.0) + float(duration_s)

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Time a block as the named phase (exceptions still charged)."""
        start = self._clock()
        try:
            yield
        finally:
            self.record(name, self._clock() - start)


@contextmanager
def trace_request(
    clock: Callable[[], float] = time.perf_counter,
) -> Iterator[RequestTrace]:
    """A trace for one request; ``total`` is stamped on normal exit.

    ``total`` is the wall time of the whole ``with`` body, so phase
    durations always sum to at most ``total`` (the remainder is the
    untraced glue between phases).
    """
    trace = RequestTrace(clock)
    yield trace
    trace.record("total", trace.elapsed_s())

"""Prometheus text-exposition rendering (no client library).

The scheduling service answers the ``metrics`` wire frame with the
standard text format — ``# HELP`` / ``# TYPE`` headers followed by
samples — so any Prometheus-compatible scraper (or plain ``grep``) can
consume it.  This module only knows how to *render*; what gets rendered
is decided by the service's own metric field table, keeping the
dependency direction obs ← service.

A :class:`MetricFamily` is one named metric with its samples; histogram
snapshots (from :mod:`repro.obs.histogram`) render as Prometheus
*summaries*: ``{quantile="0.5"}``/``0.95``/``0.99`` samples plus
``_sum`` and ``_count``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence


@dataclass(frozen=True)
class MetricFamily:
    """One metric and its samples, ready to render.

    Attributes
    ----------
    name:
        Full metric name (``repro_submitted_total``, ...).
    kind:
        Prometheus type: ``"counter"``, ``"gauge"`` or ``"summary"``.
    help:
        One-line help text (newlines and backslashes are escaped).
    samples:
        ``(suffix, labels, value)`` triples; the suffix is appended to
        the family name (``"_sum"``, ``"_count"``, or ``""``).
    """

    name: str
    kind: str
    help: str
    samples: tuple = field(default_factory=tuple)


def counter_family(name: str, help_text: str, value: float) -> MetricFamily:
    """A single-sample counter (``_total`` appended if missing)."""
    if not name.endswith("_total"):
        name = f"{name}_total"
    return MetricFamily(name, "counter", help_text, (("", None, value),))


def gauge_family(name: str, help_text: str, value: float) -> MetricFamily:
    """A single-sample gauge."""
    return MetricFamily(name, "gauge", help_text, (("", None, value),))


def info_family(
    name: str, help_text: str, labels: Mapping[str, str]
) -> MetricFamily:
    """A constant-1 gauge carrying string facts as labels."""
    return MetricFamily(
        name, "gauge", help_text, (("", dict(labels), 1.0),)
    )


def summary_family(
    name: str, help_text: str, snapshot: Mapping[str, Any]
) -> MetricFamily:
    """A summary built from a histogram snapshot dict.

    *snapshot* is :meth:`repro.obs.histogram.Histogram.snapshot` output:
    ``count``/``sum`` plus ``p50``/``p95``/``p99`` (``None`` when
    empty — rendered as Prometheus' ``NaN``).
    """
    samples = [
        ("", {"quantile": "0.5"}, snapshot.get("p50")),
        ("", {"quantile": "0.95"}, snapshot.get("p95")),
        ("", {"quantile": "0.99"}, snapshot.get("p99")),
        ("_sum", None, float(snapshot.get("sum", 0.0))),
        ("_count", None, float(snapshot.get("count", 0))),
    ]
    return MetricFamily(name, "summary", help_text, tuple(samples))


def _format_value(value: "float | None") -> str:
    if value is None or (isinstance(value, float) and math.isnan(value)):
        return "NaN"
    value = float(value)
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _format_labels(labels: "Mapping[str, str] | None") -> str:
    if not labels:
        return ""
    body = ",".join(
        f'{key}="{_escape_label(str(value))}"'
        for key, value in labels.items()
    )
    return "{" + body + "}"


def render_families(families: Sequence[MetricFamily]) -> str:
    """Render families to the text exposition format (trailing newline)."""
    lines: list[str] = []
    for family in families:
        lines.append(f"# HELP {family.name} {_escape_help(family.help)}")
        lines.append(f"# TYPE {family.name} {family.kind}")
        for suffix, labels, value in family.samples:
            lines.append(
                f"{family.name}{suffix}{_format_labels(labels)} "
                f"{_format_value(value)}"
            )
    return "\n".join(lines) + "\n"

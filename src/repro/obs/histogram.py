"""Fixed-bucket streaming latency histograms (no dependencies).

A :class:`Histogram` accumulates observations into a fixed ascending
sequence of bucket upper bounds (plus one overflow bucket), tracking
count, sum, min and max alongside — constant memory however many values
stream through, which is what lets the scheduling service record every
request's queue-wait/solve/end-to-end latency without ever growing.

Quantiles are estimated by linear interpolation inside the bucket that
contains the requested rank, clamped to the observed ``[min, max]`` so a
p99 can never be reported outside the data.  Two histograms with
identical bounds :meth:`~Histogram.merge` exactly (counts are additive),
which is how per-worker histograms would fold into one service-wide
view.

:class:`HistogramRegistry` is the named collection the service owns: one
histogram per latency family, thread-safe, snapshotting to plain dicts
ready for the stats wire frame.
"""

from __future__ import annotations

import math
import threading
from bisect import bisect_left
from typing import Any, Sequence

#: Default bucket upper bounds (seconds): four per decade, 10 us .. 100 s.
#: Wide enough for a sub-millisecond cache hit and a minutes-long exact
#: search alike; 29 buckets keep a snapshot trivially cheap.
DEFAULT_LATENCY_BOUNDS: tuple[float, ...] = tuple(
    10.0 ** (-5.0 + step / 4.0) for step in range(29)
)

#: The quantiles every snapshot reports.
SNAPSHOT_QUANTILES: tuple[float, ...] = (0.5, 0.95, 0.99)


class Histogram:
    """One streaming fixed-bucket histogram.

    Parameters
    ----------
    bounds:
        Strictly increasing bucket upper bounds.  A value ``v`` lands in
        the first bucket whose bound is ``>= v``; values above the last
        bound land in the overflow bucket.
    """

    __slots__ = ("_bounds", "_counts", "_count", "_sum", "_min", "_max")

    def __init__(
        self, bounds: Sequence[float] = DEFAULT_LATENCY_BOUNDS
    ) -> None:
        bounds = tuple(float(b) for b in bounds)
        if not bounds:
            raise ValueError("a histogram needs at least one bucket bound")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError(
                f"bucket bounds must be strictly increasing, got {bounds!r}"
            )
        self._bounds = bounds
        self._counts = [0] * (len(bounds) + 1)  # +1: overflow bucket
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf

    @property
    def bounds(self) -> tuple[float, ...]:
        """The bucket upper bounds (overflow bucket excluded)."""
        return self._bounds

    @property
    def counts(self) -> tuple[int, ...]:
        """Per-bucket observation counts (last entry is the overflow)."""
        return tuple(self._counts)

    @property
    def count(self) -> int:
        """Total observations recorded."""
        return self._count

    @property
    def sum(self) -> float:
        """Sum of every observed value."""
        return self._sum

    @property
    def min(self) -> float:
        """Smallest observed value (``nan`` when empty)."""
        return self._min if self._count else math.nan

    @property
    def max(self) -> float:
        """Largest observed value (``nan`` when empty)."""
        return self._max if self._count else math.nan

    def record(self, value: float) -> None:
        """Stream one observation in (O(log buckets))."""
        value = float(value)
        if math.isnan(value):
            raise ValueError("cannot record NaN into a histogram")
        self._counts[bisect_left(self._bounds, value)] += 1
        self._count += 1
        self._sum += value
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value

    def merge(self, other: "Histogram") -> None:
        """Fold *other*'s observations into this histogram.

        Only histograms with identical bounds merge exactly; anything
        else is a programming error, not data.
        """
        if other._bounds != self._bounds:
            raise ValueError(
                "cannot merge histograms with different bucket bounds"
            )
        for i, count in enumerate(other._counts):
            self._counts[i] += count
        self._count += other._count
        self._sum += other._sum
        if other._count:
            self._min = min(self._min, other._min)
            self._max = max(self._max, other._max)

    def copy(self) -> "Histogram":
        """An independent copy (same bounds, same observations so far)."""
        clone = Histogram(self._bounds)
        clone._counts = list(self._counts)
        clone._count = self._count
        clone._sum = self._sum
        clone._min = self._min
        clone._max = self._max
        return clone

    def quantile(self, q: float) -> float:
        """Estimate the *q*-quantile (``0 <= q <= 1``; ``nan`` when empty).

        Linear interpolation within the containing bucket, clamped to
        the observed ``[min, max]`` — the overflow bucket interpolates
        toward the observed max, so an estimate never exceeds reality.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be within [0, 1], got {q!r}")
        if self._count == 0:
            return math.nan
        target = q * self._count
        cumulative = 0
        for i, count in enumerate(self._counts):
            if count == 0:
                continue
            if cumulative + count >= target:
                lower = self._bounds[i - 1] if i > 0 else 0.0
                upper = (
                    self._bounds[i] if i < len(self._bounds) else self._max
                )
                fraction = (target - cumulative) / count
                estimate = lower + fraction * (upper - lower)
                return min(max(estimate, self._min), self._max)
            cumulative += count
        return self._max

    def snapshot(self) -> dict[str, Any]:
        """JSON-ready summary: count/sum/min/max/mean plus p50/p95/p99.

        Non-finite values (an empty histogram's quantiles) become
        ``None`` so the snapshot survives strict JSON and Prometheus
        rendering alike.
        """

        def _clean(value: float) -> float | None:
            return value if math.isfinite(value) else None

        data: dict[str, Any] = {
            "count": self._count,
            "sum": self._sum,
            "min": _clean(self.min),
            "max": _clean(self.max),
            "mean": _clean(self._sum / self._count) if self._count else None,
        }
        for q in SNAPSHOT_QUANTILES:
            data[f"p{int(q * 100)}"] = _clean(self.quantile(q))
        return data


class HistogramRegistry:
    """A named, thread-safe collection of same-bounds histograms.

    The service's event loop records into it while ``metrics`` frames
    (and a drain's final describe) may read from other threads, hence
    the lock; with tens of buckets both paths are microseconds.
    """

    def __init__(
        self, bounds: Sequence[float] = DEFAULT_LATENCY_BOUNDS
    ) -> None:
        self._bounds = tuple(float(b) for b in bounds)
        self._histograms: dict[str, Histogram] = {}  # guarded-by: _lock
        self._lock = threading.Lock()

    def histogram(self, name: str) -> Histogram:
        """The named histogram, created on first use."""
        with self._lock:
            found = self._histograms.get(name)
            if found is None:
                found = self._histograms[name] = Histogram(self._bounds)
            return found

    def observe(self, name: str, value: float) -> None:
        """Record one observation into the named histogram."""
        with self._lock:
            found = self._histograms.get(name)
            if found is None:
                found = self._histograms[name] = Histogram(self._bounds)
            found.record(value)

    def names(self) -> tuple[str, ...]:
        """Registered histogram names, in creation order."""
        with self._lock:
            return tuple(self._histograms)

    def snapshot(self) -> dict[str, dict[str, Any]]:
        """Per-histogram snapshots, keyed by name (JSON-ready)."""
        with self._lock:
            return {
                name: hist.snapshot()
                for name, hist in self._histograms.items()
            }

    def merge(self, other: "HistogramRegistry") -> None:
        """Fold every histogram of *other* into this registry.

        The source histograms are copied under *other*'s lock and the
        copies folded under this registry's lock, so a merge races
        neither concurrent observes into the source (torn counts read
        mid-record) nor into the destination (lost increments).  The
        two locks are never held at once, so cross-merges cannot
        deadlock.
        """
        with other._lock:
            copies = {
                name: hist.copy()
                for name, hist in other._histograms.items()
            }
        with self._lock:
            for name, copy in copies.items():
                found = self._histograms.get(name)
                if found is None:
                    found = self._histograms[name] = Histogram(self._bounds)
                found.merge(copy)

"""Power profiles: per-core functional and test power.

The paper's experiments use "test power dissipation values ... ranging
from 1.5X to 8X their power dissipation during normal operation".  A
:class:`PowerProfile` captures exactly that pair per core, validates it,
and provides the derived quantities the rest of the library consumes
(test power maps for sessions, power densities for analysis).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, Mapping

from ..errors import PowerModelError
from ..floorplan.floorplan import Floorplan

#: The multiplier range the paper quotes for test-vs-functional power.
PAPER_MULTIPLIER_RANGE = (1.5, 8.0)


@dataclass(frozen=True)
class CorePower:
    """Functional and test power of one core.

    Attributes
    ----------
    name:
        Core/block name.
    functional_w:
        Average power during normal operation (W).
    test_w:
        Average power while the core's test is applied (W).
    """

    name: str
    functional_w: float
    test_w: float

    def __post_init__(self) -> None:
        if self.functional_w <= 0.0:
            raise PowerModelError(
                f"core {self.name!r}: functional power must be positive, "
                f"got {self.functional_w!r}"
            )
        if self.test_w <= 0.0:
            raise PowerModelError(
                f"core {self.name!r}: test power must be positive, "
                f"got {self.test_w!r}"
            )

    @property
    def test_multiplier(self) -> float:
        """Test power divided by functional power."""
        return self.test_w / self.functional_w


class PowerProfile:
    """Immutable per-core power table.

    Parameters
    ----------
    cores:
        One :class:`CorePower` per core; names must be unique.
    name:
        Profile name for reports.
    """

    def __init__(self, cores: list[CorePower], name: str = "profile") -> None:
        if not cores:
            raise PowerModelError("a power profile needs at least one core")
        self._name = name
        self._cores: dict[str, CorePower] = {}
        for core in cores:
            if core.name in self._cores:
                raise PowerModelError(f"duplicate core in power profile: {core.name!r}")
            self._cores[core.name] = core

    @property
    def name(self) -> str:
        """Profile name."""
        return self._name

    @property
    def core_names(self) -> tuple[str, ...]:
        """Core names in insertion order."""
        return tuple(self._cores)

    def __len__(self) -> int:
        return len(self._cores)

    def __iter__(self) -> Iterator[CorePower]:
        return iter(self._cores.values())

    def __contains__(self, name: object) -> bool:
        return name in self._cores

    def __getitem__(self, name: str) -> CorePower:
        try:
            return self._cores[name]
        except KeyError:
            raise PowerModelError(
                f"profile {self._name!r} has no core named {name!r}"
            ) from None

    # -- derived maps -------------------------------------------------------------

    def test_power_map(self, active: list[str] | None = None) -> dict[str, float]:
        """Test-power map (W by core) for the given active set.

        With ``active=None`` every core is active (the maximally
        concurrent session); otherwise only the named cores appear in
        the map — passive cores dissipate nothing during test, matching
        the paper's session power model.
        """
        names = self.core_names if active is None else active
        missing = [n for n in names if n not in self._cores]
        if missing:
            raise PowerModelError(f"unknown cores in active set: {missing}")
        return {name: self._cores[name].test_w for name in names}

    def functional_power_map(self) -> dict[str, float]:
        """Functional (mission-mode) power map (W by core)."""
        return {name: cp.functional_w for name, cp in self._cores.items()}

    def total_test_power(self, active: list[str] | None = None) -> float:
        """Total test power (W) of the given active set (all cores when None)."""
        return math.fsum(self.test_power_map(active).values())

    def test_power_densities(self, floorplan: Floorplan) -> dict[str, float]:
        """Test power density (W/m^2) per core, given the floorplan."""
        self.validate_against(floorplan)
        return {
            name: self._cores[name].test_w / floorplan[name].area
            for name in self.core_names
        }

    # -- validation --------------------------------------------------------------------

    def validate_against(self, floorplan: Floorplan) -> None:
        """Check the profile covers exactly the floorplan's blocks.

        Raises
        ------
        PowerModelError
            When a floorplan block has no power entry or the profile
            names a block the floorplan lacks.
        """
        floorplan_names = set(floorplan.block_names)
        profile_names = set(self._cores)
        missing = sorted(floorplan_names - profile_names)
        extra = sorted(profile_names - floorplan_names)
        if missing or extra:
            raise PowerModelError(
                f"power profile {self._name!r} does not match floorplan "
                f"{floorplan.name!r}: missing power for {missing or 'none'}, "
                f"extra entries {extra or 'none'}"
            )

    def check_paper_multiplier_range(
        self, multiplier_range: tuple[float, float] = PAPER_MULTIPLIER_RANGE
    ) -> None:
        """Verify all test multipliers lie within the paper's 1.5x-8x range."""
        low, high = multiplier_range
        for core in self:
            if not low <= core.test_multiplier <= high:
                raise PowerModelError(
                    f"core {core.name!r} has test multiplier "
                    f"{core.test_multiplier:.3f}, outside [{low}, {high}]"
                )

    # -- construction helpers -----------------------------------------------------------

    @classmethod
    def from_maps(
        cls,
        functional_w: Mapping[str, float],
        test_w: Mapping[str, float],
        name: str = "profile",
    ) -> "PowerProfile":
        """Build a profile from two name->watts mappings."""
        if set(functional_w) != set(test_w):
            raise PowerModelError(
                "functional and test power maps must name the same cores"
            )
        return cls(
            [CorePower(n, functional_w[n], test_w[n]) for n in functional_w],
            name=name,
        )

    def scaled(self, factor: float, name: str | None = None) -> "PowerProfile":
        """A copy with every power multiplied by *factor* (calibration aid)."""
        if factor <= 0.0:
            raise PowerModelError(f"scale factor must be positive, got {factor!r}")
        return PowerProfile(
            [
                CorePower(c.name, c.functional_w * factor, c.test_w * factor)
                for c in self
            ],
            name=name if name is not None else f"{self._name}-x{factor:g}",
        )

"""Synthetic test-power generation.

The authors never published their per-core power numbers; the paper
states only that test power ranged from 1.5x to 8x functional power.
This module generates profiles with exactly that structure:

1. every core gets a *functional* power from its area and a functional
   power density (W/cm^2) chosen per unit class or drawn from a seeded
   range — large cache-like blocks run cool, small logic blocks run
   hot, matching real designs;
2. every core gets a *test multiplier* drawn uniformly from the paper's
   [1.5, 8] range with a seeded RNG.

Everything is deterministic given the seed.  The calibrated profile the
experiments use lives in :mod:`repro.soc.library`; this module is the
machinery behind it and behind the property-based tests that exercise
the scheduler on random SoCs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from ..errors import PowerModelError
from ..floorplan.floorplan import Floorplan
from .profile import PAPER_MULTIPLIER_RANGE, CorePower, PowerProfile

#: Functional power density defaults (W/m^2) by broad unit class.
#: 1 W/cm^2 == 1e4 W/m^2.  Caches sit near 2-3 W/cm^2; hot execution
#: logic at 20-40 W/cm^2 — the order-of-magnitude spread that makes the
#: paper's power-density argument bite.
DEFAULT_CLASS_DENSITIES = {
    "cache": 2.5e4,
    "memory": 3.0e4,
    "control": 1.2e5,
    "execution": 2.5e5,
    "register": 3.0e5,
    "default": 1.0e5,
}


@dataclass(frozen=True)
class PowerGeneratorConfig:
    """Configuration for :func:`generate_power_profile`.

    Attributes
    ----------
    multiplier_range:
        Range of test-to-functional multipliers (paper: [1.5, 8]).
    density_range:
        When a block has no class assignment, its functional power
        density (W/m^2) is drawn log-uniformly from this range.
    seed:
        RNG seed.
    """

    multiplier_range: tuple[float, float] = PAPER_MULTIPLIER_RANGE
    density_range: tuple[float, float] = (2.0e4, 3.0e5)
    seed: int = 0

    def __post_init__(self) -> None:
        low, high = self.multiplier_range
        if not 0.0 < low <= high:
            raise PowerModelError(
                f"invalid multiplier range {self.multiplier_range!r}"
            )
        d_low, d_high = self.density_range
        if not 0.0 < d_low <= d_high:
            raise PowerModelError(f"invalid density range {self.density_range!r}")


def generate_power_profile(
    floorplan: Floorplan,
    config: PowerGeneratorConfig = PowerGeneratorConfig(),
    block_classes: Mapping[str, str] | None = None,
    class_densities: Mapping[str, float] | None = None,
    name: str | None = None,
) -> PowerProfile:
    """Generate a seeded power profile for a floorplan.

    Parameters
    ----------
    floorplan:
        The floorplan whose blocks need powers.
    config:
        Randomness and range configuration.
    block_classes:
        Optional block-name -> unit-class mapping ("cache",
        "execution", ...); classed blocks use the class density,
        unclassed blocks draw from ``config.density_range``.
    class_densities:
        Override of :data:`DEFAULT_CLASS_DENSITIES`.
    name:
        Profile name (defaults to ``"<floorplan>-power-s<seed>"``).

    Returns
    -------
    PowerProfile
        One entry per floorplan block; test multipliers all within the
        configured range (verified by construction).
    """
    rng = np.random.default_rng(config.seed)
    densities = dict(DEFAULT_CLASS_DENSITIES)
    if class_densities:
        densities.update(class_densities)
    classes = block_classes or {}

    cores: list[CorePower] = []
    d_low, d_high = config.density_range
    m_low, m_high = config.multiplier_range
    for block in floorplan:
        unit_class = classes.get(block.name)
        if unit_class is not None:
            if unit_class not in densities:
                raise PowerModelError(
                    f"block {block.name!r} has unknown unit class {unit_class!r}; "
                    f"known classes: {', '.join(sorted(densities))}"
                )
            density = densities[unit_class]
        else:
            density = float(
                np.exp(rng.uniform(np.log(d_low), np.log(d_high)))
            )
        functional = density * block.area
        multiplier = float(rng.uniform(m_low, m_high))
        cores.append(CorePower(block.name, functional, functional * multiplier))

    profile = PowerProfile(
        cores,
        name=name if name is not None else f"{floorplan.name}-power-s{config.seed}",
    )
    profile.check_paper_multiplier_range(config.multiplier_range)
    return profile


def uniform_test_power_profile(
    floorplan: Floorplan, test_w: float, multiplier: float = 4.0, name: str | None = None
) -> PowerProfile:
    """Every core dissipates the same *test_w* during test.

    This is the structure of the paper's Figure 1 motivational example
    ("P(Ci) = 15W, i = 1..7"): equal powers, so power *density* varies
    purely with block area.  Functional power is derived by dividing by
    *multiplier* (it plays no role in scheduling; it exists so the
    profile is complete).
    """
    if test_w <= 0.0:
        raise PowerModelError(f"test power must be positive, got {test_w!r}")
    if multiplier <= 0.0:
        raise PowerModelError(f"multiplier must be positive, got {multiplier!r}")
    cores = [
        CorePower(block.name, test_w / multiplier, test_w) for block in floorplan
    ]
    return PowerProfile(
        cores, name=name if name is not None else f"{floorplan.name}-uniform{test_w:g}W"
    )

"""Test power modelling (DESIGN.md system S3)."""

from .generator import (
    DEFAULT_CLASS_DENSITIES,
    PowerGeneratorConfig,
    generate_power_profile,
    uniform_test_power_profile,
)
from .profile import PAPER_MULTIPLIER_RANGE, CorePower, PowerProfile

__all__ = [
    "CorePower",
    "DEFAULT_CLASS_DENSITIES",
    "PAPER_MULTIPLIER_RANGE",
    "PowerGeneratorConfig",
    "PowerProfile",
    "generate_power_profile",
    "uniform_test_power_profile",
]

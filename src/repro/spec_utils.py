"""Shared helpers for the frozen problem-spec dataclasses.

:class:`~repro.api.ScheduleRequest` and
:class:`~repro.engine.jobs.JobSpec` both carry a params mapping and the
same (TL, STCL) limit fields.  The hashing and validation rules live
here once so the two front doors (and
:meth:`repro.api.Workbench.solve_soc`) cannot drift; this module sits
below both ``repro.api`` and ``repro.engine`` in the import graph, so
either may import it at module level.
"""

from __future__ import annotations

from typing import Any, Mapping


class FrozenParams(dict):
    """An immutable params mapping for the frozen spec dataclasses.

    ``frozen=True`` only blocks attribute assignment; a plain-dict
    params field could still be mutated in place, silently changing the
    spec's hash and equality.  This dict subclass blocks every mutator
    (nested values are not deep-frozen — treat them as read-only).  It
    pickles and deep-copies via reconstruction, and ``json.dumps`` /
    ``dataclasses.asdict`` treat it as the dict it is.
    """

    def _immutable(self, *args, **kwargs):
        raise TypeError(
            "spec params are immutable; build a new request/job with "
            "dataclasses.replace(spec, params={...}) instead"
        )

    __setitem__ = _immutable
    __delitem__ = _immutable
    clear = _immutable
    pop = _immutable
    popitem = _immutable
    setdefault = _immutable
    update = _immutable

    def __reduce__(self):
        # Default dict-subclass pickling restores items via the (now
        # blocked) __setitem__; rebuild through the constructor instead.
        return (type(self), (dict(self),))


def freeze_value(value: Any) -> Any:
    """A hashable stand-in for a JSON-ish value (dicts/lists frozen)."""
    if isinstance(value, dict):
        return tuple(
            sorted((key, freeze_value(item)) for key, item in value.items())
        )
    if isinstance(value, (list, tuple)):
        return tuple(freeze_value(item) for item in value)
    return value


def hashable_params(params: Mapping[str, Any]) -> tuple:
    """A canonical hashable view of a params mapping.

    The spec dataclasses are frozen but hold a plain-dict params field,
    which would make the generated ``__hash__`` raise; their explicit
    ``__hash__`` implementations substitute this view.
    """
    return tuple(sorted((key, freeze_value(value)) for key, value in params.items()))


def validate_limit_fields(
    *,
    tl_c: float | None,
    tl_headroom: float | None,
    stcl: float | None,
    stcl_headroom: float | None,
    error_cls: type[Exception],
    prefix: str = "",
) -> None:
    """Enforce the shared (TL, STCL) field rules of every spec shape.

    Exactly one of the TL pair; ``tl_headroom`` strictly above 1; at
    most one of the STCL pair, each strictly positive.  Whether an STCL
    is *required* depends on the solver's capability flag and is
    checked by the caller.
    """
    if (tl_c is None) == (tl_headroom is None):
        raise error_cls(f"{prefix}exactly one of tl_c / tl_headroom is required")
    if tl_headroom is not None and tl_headroom <= 1.0:
        raise error_cls(
            f"{prefix}tl_headroom must be > 1 (TL at or below the singleton "
            f"peak is infeasible), got {tl_headroom!r}"
        )
    if stcl is not None and stcl_headroom is not None:
        raise error_cls(f"{prefix}at most one of stcl / stcl_headroom may be set")
    if stcl is not None and stcl <= 0.0:
        raise error_cls(f"{prefix}stcl must be positive, got {stcl!r}")
    if stcl_headroom is not None and stcl_headroom <= 0.0:
        raise error_cls(
            f"{prefix}stcl_headroom must be positive, got {stcl_headroom!r}"
        )

"""Synthetic floorplan generation.

Two generators are provided:

* :func:`grid_floorplan` — a uniform m x n grid of equally sized cores.
  Used by the scaling study (DESIGN.md section 7) and by property-based
  tests that need predictable adjacency.
* :func:`slicing_floorplan` — a randomised slicing-tree floorplan, the
  classic recursive bipartition used in floorplanning research.  It
  produces fully tiled layouts with a controllable spread of block
  areas, which is exactly the property the paper's motivational example
  relies on (power density variation across cores).

Both generators are deterministic given their seed; nothing in this
library draws from global random state.
"""

from __future__ import annotations

import numpy as np

from ..errors import FloorplanError
from .floorplan import Block, Floorplan
from .geometry import Rect

#: Minimum block side produced by the slicing generator, as a fraction of
#: the die side.  Prevents degenerate slivers whose lateral resistances
#: would dwarf everything else in the RC network.
_MIN_SIDE_FRACTION = 0.04


def grid_floorplan(
    rows: int,
    cols: int,
    die_width: float = 16e-3,
    die_height: float = 16e-3,
    name: str | None = None,
) -> Floorplan:
    """A uniform grid of ``rows x cols`` identical rectangular cores.

    Parameters
    ----------
    rows, cols:
        Grid dimensions; both must be >= 1.
    die_width, die_height:
        Die size in metres (defaults to a 16 mm x 16 mm die).
    name:
        Optional floorplan name (default ``"grid<rows>x<cols>"``).

    Block names are ``C<r>_<c>`` with 0-based row/column indices,
    row-major from the south-west corner.
    """
    if rows < 1 or cols < 1:
        raise FloorplanError(f"grid must be at least 1x1, got {rows}x{cols}")
    if die_width <= 0.0 or die_height <= 0.0:
        raise FloorplanError("die dimensions must be positive")
    cell_w = die_width / cols
    cell_h = die_height / rows
    blocks = []
    for r in range(rows):
        for c in range(cols):
            blocks.append(
                Block(f"C{r}_{c}", Rect(c * cell_w, r * cell_h, cell_w, cell_h))
            )
    return Floorplan(
        blocks,
        name=name if name is not None else f"grid{rows}x{cols}",
        outline=Rect(0.0, 0.0, die_width, die_height),
        require_full_coverage=True,
    )


def slicing_floorplan(
    n_blocks: int,
    die_width: float = 16e-3,
    die_height: float = 16e-3,
    seed: int = 0,
    split_bias: float = 0.5,
    name: str | None = None,
) -> Floorplan:
    """A randomised slicing-tree floorplan with *n_blocks* blocks.

    The die is recursively cut by alternating-preference horizontal and
    vertical guillotine cuts.  The cut position is drawn uniformly from
    the central portion of the parent rectangle so that no block becomes
    a degenerate sliver.  The recursion always splits the rectangle with
    the largest remaining block budget, so the tree stays balanced in
    expectation while ``split_bias`` skews cut positions to produce a
    wider spread of block areas (``split_bias`` of 0.5 cuts near the
    middle; values toward 0 or 1 produce strongly unequal children).

    Parameters
    ----------
    n_blocks:
        Number of blocks to produce (>= 1).
    die_width, die_height:
        Die size in metres.
    seed:
        RNG seed; the same seed always yields the same floorplan.
    split_bias:
        Mean relative cut position in (0, 1).
    name:
        Optional floorplan name (default ``"slicing<n>"``).

    Returns
    -------
    Floorplan
        Fully tiled floorplan with blocks named ``B0 .. B<n-1>`` in
        generation order.
    """
    if n_blocks < 1:
        raise FloorplanError(f"n_blocks must be >= 1, got {n_blocks}")
    if not 0.0 < split_bias < 1.0:
        raise FloorplanError(f"split_bias must lie in (0, 1), got {split_bias!r}")
    rng = np.random.default_rng(seed)

    # Each work item is (rect, number of blocks it still must contain).
    work: list[tuple[Rect, int]] = [(Rect(0.0, 0.0, die_width, die_height), n_blocks)]
    leaves: list[Rect] = []
    while work:
        # Split the rectangle with the largest remaining budget first so
        # block counts stay balanced across the die.
        work.sort(key=lambda item: item[1])
        rect, budget = work.pop()
        if budget == 1:
            leaves.append(rect)
            continue
        left_budget = budget // 2
        right_budget = budget - left_budget
        # Prefer cutting across the long dimension; fall back if the
        # resulting pieces would violate the minimum side.
        cut_vertical = rect.width >= rect.height
        fraction = _draw_cut_fraction(rng, split_bias, left_budget / budget)
        for attempt_vertical in (cut_vertical, not cut_vertical):
            side = rect.width if attempt_vertical else rect.height
            min_side = _MIN_SIDE_FRACTION * min(die_width, die_height)
            cut = side * fraction
            cut = min(max(cut, min_side), side - min_side)
            if cut <= 0.0 or cut >= side:
                continue
            if attempt_vertical:
                first = Rect(rect.x, rect.y, cut, rect.height)
                second = Rect(rect.x + cut, rect.y, rect.width - cut, rect.height)
            else:
                first = Rect(rect.x, rect.y, rect.width, cut)
                second = Rect(rect.x, rect.y + cut, rect.width, rect.height - cut)
            work.append((first, left_budget))
            work.append((second, right_budget))
            break
        else:
            # Rectangle too small to split further under the minimum
            # side constraint; absorb the budget as a single leaf.  The
            # caller still receives a valid (if smaller) floorplan.
            leaves.append(rect)

    blocks = [Block(f"B{i}", rect) for i, rect in enumerate(leaves)]
    return Floorplan(
        blocks,
        name=name if name is not None else f"slicing{n_blocks}",
        outline=Rect(0.0, 0.0, die_width, die_height),
        require_full_coverage=True,
    )


def _draw_cut_fraction(
    rng: np.random.Generator, split_bias: float, budget_fraction: float
) -> float:
    """Draw the relative position of a guillotine cut.

    The cut position tracks the budget split (so a 1-vs-3 budget split
    tends to produce a small and a large child) and is then jittered
    toward ``split_bias``.  The result is clamped to [0.15, 0.85] to
    avoid slivers before the absolute minimum-side clamp is applied.
    """
    base = 0.5 * budget_fraction + 0.5 * split_bias
    jitter = rng.uniform(-0.15, 0.15)
    return float(np.clip(base + jitter, 0.15, 0.85))

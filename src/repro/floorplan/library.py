"""Built-in floorplans used by the paper's experiments.

Three layouts are bundled:

* :func:`alpha15` — a 15-block Alpha-21364-class floorplan.  The paper's
  experiments run on "the Compaq Alpha 21368 floorplan from [12]" (the
  HotSpot paper; the part is the 21364, whose core is an EV68).  The
  original ``.flp`` is not redistributable, so this is a reconstruction
  with the same unit mix and the property the experiments rely on: a
  wide spread of block areas, hence of power densities (our spread is
  22:1 between the L2 and the smallest logic blocks).  See DESIGN.md,
  substitution 2.
* :func:`hypothetical7` — the 7-core system of the paper's Figure 1
  motivational example: three small cores (C2-C4) and three large cores
  (C5-C7) all dissipating the same test power, with C2's power density
  exactly 4x C5's (the ratio the paper quotes), plus a large C1.
  The small cores are mutually adjacent (they lose their lateral escape
  paths when tested together); the large cores are mutually isolated.
* :func:`worked_example6` — the 6-block layout of the paper's Figure 2,
  used to illustrate the session thermal model with session {2, 4, 5}:
  block 2 touches the north die edge, block 4 the west and south edges,
  block 5 the south edge, and blocks 4 and 5 are adjacent to each other
  (their mutual resistance is the one modification M2 removes).

All dimensions in metres; layouts are validated (and, where stated,
fully tiled) at import time of the calling test or experiment.
"""

from __future__ import annotations

from ..units import mm
from .floorplan import Block, Floorplan
from .geometry import Rect


def alpha15() -> Floorplan:
    """15-block Alpha-21364-class floorplan on a 16 mm x 16 mm die.

    Fully tiled.  Unit mix: three L2 cache regions (the large, cool
    blocks), the L1 instruction and data caches, and ten small core
    logic units (branch predictor, TLBs, load/store queue, FP and
    integer clusters) — the hot, power-dense blocks.
    """
    blocks = [
        # The big L2 array spans the southern band of the die.
        Block("L2", Rect(mm(0.0), mm(0.0), mm(16.0), mm(7.0))),
        # L2 side banks flank the CPU core region.
        Block("L2_left", Rect(mm(0.0), mm(7.0), mm(3.0), mm(9.0))),
        Block("L2_right", Rect(mm(13.0), mm(7.0), mm(3.0), mm(9.0))),
        # L1 caches, directly north of the L2 array.
        Block("Icache", Rect(mm(3.0), mm(7.0), mm(5.0), mm(3.0))),
        Block("Dcache", Rect(mm(8.0), mm(7.0), mm(5.0), mm(3.0))),
        # Front-end / memory-pipe row.
        Block("Bpred", Rect(mm(3.0), mm(10.0), mm(2.5), mm(2.0))),
        Block("ITB", Rect(mm(5.5), mm(10.0), mm(2.5), mm(2.0))),
        Block("DTB", Rect(mm(8.0), mm(10.0), mm(2.5), mm(2.0))),
        Block("LdStQ", Rect(mm(10.5), mm(10.0), mm(2.5), mm(2.0))),
        # Floating-point cluster row.
        Block("FPMul", Rect(mm(3.0), mm(12.0), mm(4.0), mm(2.0))),
        Block("FPAdd", Rect(mm(7.0), mm(12.0), mm(3.0), mm(2.0))),
        Block("FPReg", Rect(mm(10.0), mm(12.0), mm(3.0), mm(2.0))),
        # Integer cluster row along the north edge.
        Block("IntMap", Rect(mm(3.0), mm(14.0), mm(3.0), mm(2.0))),
        Block("IntExec", Rect(mm(6.0), mm(14.0), mm(4.0), mm(2.0))),
        Block("IntReg", Rect(mm(10.0), mm(14.0), mm(3.0), mm(2.0))),
    ]
    return Floorplan(
        blocks,
        name="alpha15",
        outline=Rect(0.0, 0.0, mm(16.0), mm(16.0)),
        require_full_coverage=True,
    )


#: Unit classes of the alpha15 blocks, used by the power generator.
ALPHA15_CLASSES = {
    "L2": "cache",
    "L2_left": "cache",
    "L2_right": "cache",
    "Icache": "memory",
    "Dcache": "memory",
    "Bpred": "control",
    "ITB": "control",
    "DTB": "control",
    "LdStQ": "execution",
    "FPMul": "execution",
    "FPAdd": "execution",
    "FPReg": "register",
    "IntMap": "control",
    "IntExec": "execution",
    "IntReg": "register",
}


def hypothetical7() -> Floorplan:
    """The 7-core hypothetical system of the paper's Figure 1.

    24 mm x 24 mm die, not fully tiled (the figure's cartoon has white
    space; uncovered die is treated as adiabatic by the RC builder).

    Design constraints taken from the paper's text:

    * all cores dissipate the same test power (15 W in the example);
    * C2's power density is exactly 4x C5's, i.e. ``area(C5) = 4 *
      area(C2)`` (4 mm^2 vs 16 mm^2);
    * TS1 = {C2, C3, C4} are small *and* mutually adjacent, so testing
      them together removes their lateral escape paths toward each
      other — the hot session;
    * TS2 = {C5, C6, C7} are large and mutually non-adjacent — the cool
      session at the same total power.
    """
    blocks = [
        # The big left core; C2 and C3 lean against it.
        Block("C1", Rect(mm(0.0), mm(0.0), mm(9.0), mm(24.0))),
        # The small, dense cluster (tested together in TS1).
        Block("C2", Rect(mm(9.0), mm(18.0), mm(2.0), mm(2.0))),
        Block("C3", Rect(mm(9.0), mm(16.0), mm(2.0), mm(2.0))),
        Block("C4", Rect(mm(11.0), mm(16.0), mm(2.0), mm(2.0))),
        # The large, spread-out cores (tested together in TS2).
        Block("C5", Rect(mm(11.0), mm(2.0), mm(4.0), mm(4.0))),
        Block("C6", Rect(mm(17.0), mm(2.0), mm(4.0), mm(4.0))),
        Block("C7", Rect(mm(17.0), mm(8.0), mm(4.0), mm(4.0))),
    ]
    return Floorplan(
        blocks,
        name="hypothetical7",
        outline=Rect(0.0, 0.0, mm(24.0), mm(24.0)),
    )


#: Figure 1's test sessions and power constraint.
FIG1_SESSION_HOT = ("C2", "C3", "C4")
FIG1_SESSION_COOL = ("C5", "C6", "C7")
FIG1_CORE_POWER_W = 15.0
FIG1_POWER_LIMIT_W = 45.0


def worked_example6() -> Floorplan:
    """The 6-block layout of the paper's Figures 2-4 (session {2,4,5}).

    12 mm x 12 mm die, fully tiled.  Adjacency realises the resistance
    lists of Figure 3: block B2 touches B1, B3 and the north die edge;
    block B4 touches B1, B5 and the west and south edges; block B5
    touches B3, B4, B6 and the south edge.  The B4-B5 resistance is the
    active-active one modification M2 removes for session {B2, B4, B5}.
    """
    blocks = [
        Block("B1", Rect(mm(0.0), mm(8.0), mm(6.0), mm(4.0))),
        Block("B2", Rect(mm(6.0), mm(8.0), mm(6.0), mm(4.0))),
        Block("B3", Rect(mm(8.0), mm(0.0), mm(4.0), mm(8.0))),
        Block("B4", Rect(mm(0.0), mm(0.0), mm(4.0), mm(8.0))),
        Block("B5", Rect(mm(4.0), mm(0.0), mm(4.0), mm(4.0))),
        Block("B6", Rect(mm(4.0), mm(4.0), mm(4.0), mm(4.0))),
    ]
    return Floorplan(
        blocks,
        name="worked_example6",
        outline=Rect(0.0, 0.0, mm(12.0), mm(12.0)),
        require_full_coverage=True,
    )


#: The active set of the paper's worked example (Figures 2-4).
WORKED_EXAMPLE_SESSION = ("B2", "B4", "B5")

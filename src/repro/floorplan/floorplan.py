"""Floorplan: a named collection of non-overlapping blocks on a die.

A :class:`Floorplan` is the geometric substrate of every experiment in
the paper: the thermal RC network (``repro.thermal``), the test-session
thermal model (``repro.core.session_model``) and the figures' example
layouts are all derived from one.

The class is deliberately immutable after construction; the validator
runs once in ``__init__`` and every consumer can then rely on:

* block names are unique and non-empty;
* all blocks lie inside the die outline;
* no two blocks overlap (edge contact is allowed and is what defines
  thermal adjacency);
* coverage statistics are available (a floorplan need not tile the die
  completely, but the built-in layouts do, and the validator can be
  asked to enforce it).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, Mapping

from ..errors import FloorplanError, GeometryError
from .geometry import GEOM_TOL, Rect, bounding_box, total_area


@dataclass(frozen=True)
class Block:
    """A named floorplan block (one core / architectural unit).

    Attributes
    ----------
    name:
        Unique identifier within a floorplan (e.g. ``"Icache"``).
    rect:
        Block geometry in metres, HotSpot convention (left-bottom origin).
    """

    name: str
    rect: Rect

    def __post_init__(self) -> None:
        if not self.name or not self.name.strip():
            raise FloorplanError("block name must be a non-empty string")
        if any(ch.isspace() for ch in self.name):
            raise FloorplanError(
                f"block name {self.name!r} must not contain whitespace "
                f"(HotSpot .flp compatibility)"
            )

    @property
    def area(self) -> float:
        """Block area in square metres."""
        return self.rect.area

    def power_density(self, power_w: float) -> float:
        """Power density (W/m^2) of this block dissipating *power_w* watts."""
        return power_w / self.rect.area


class Floorplan:
    """An immutable, validated die floorplan.

    Parameters
    ----------
    blocks:
        The floorplan blocks.  Order is preserved and defines the
        canonical block indexing used by the thermal solver.
    name:
        Human-readable floorplan name (used in reports).
    outline:
        Die outline rectangle.  Defaults to the bounding box of the
        blocks anchored at their minimum corner.
    require_full_coverage:
        When true, the blocks must tile the outline exactly (within
        tolerance); the built-in Alpha-like floorplan satisfies this.

    Raises
    ------
    FloorplanError
        On duplicate names, out-of-outline blocks, overlapping blocks,
        or (when requested) incomplete coverage.
    """

    def __init__(
        self,
        blocks: list[Block],
        name: str = "floorplan",
        outline: Rect | None = None,
        require_full_coverage: bool = False,
    ) -> None:
        if not blocks:
            raise FloorplanError("a floorplan must contain at least one block")
        self._name = name
        self._blocks: tuple[Block, ...] = tuple(blocks)
        self._index: dict[str, int] = {}
        for i, block in enumerate(self._blocks):
            if block.name in self._index:
                raise FloorplanError(f"duplicate block name: {block.name!r}")
            self._index[block.name] = i

        rects = [b.rect for b in self._blocks]
        self._outline = outline if outline is not None else bounding_box(rects)

        for block in self._blocks:
            if not self._outline.contains_rect(block.rect):
                raise FloorplanError(
                    f"block {block.name!r} ({block.rect!r}) extends outside the "
                    f"die outline {self._outline!r}"
                )

        self._check_no_overlap()

        self._blocks_area = total_area(rects)
        coverage = self._blocks_area / self._outline.area
        if require_full_coverage and not math.isclose(coverage, 1.0, rel_tol=1e-6):
            raise FloorplanError(
                f"floorplan {name!r} covers only {coverage:.6f} of the die outline "
                f"but full coverage was required"
            )
        self._coverage = coverage

    def _check_no_overlap(self) -> None:
        """Reject interior overlaps between any pair of blocks.

        O(n^2) over block pairs; block-level floorplans have tens of
        blocks, so a sweep-line would be over-engineering here.
        """
        for i, a in enumerate(self._blocks):
            for b in self._blocks[i + 1 :]:
                if a.rect.overlaps(b.rect):
                    overlap = a.rect.overlap_area(b.rect)
                    raise FloorplanError(
                        f"blocks {a.name!r} and {b.name!r} overlap "
                        f"(intersection area {overlap:.3e} m^2)"
                    )

    # -- identity & iteration --------------------------------------------------

    @property
    def name(self) -> str:
        """Floorplan name."""
        return self._name

    @property
    def outline(self) -> Rect:
        """Die outline rectangle."""
        return self._outline

    @property
    def blocks(self) -> tuple[Block, ...]:
        """All blocks in canonical order."""
        return self._blocks

    @property
    def block_names(self) -> tuple[str, ...]:
        """Block names in canonical order."""
        return tuple(b.name for b in self._blocks)

    def __len__(self) -> int:
        return len(self._blocks)

    def __iter__(self) -> Iterator[Block]:
        return iter(self._blocks)

    def __contains__(self, name: object) -> bool:
        return name in self._index

    def __getitem__(self, name: str) -> Block:
        try:
            return self._blocks[self._index[name]]
        except KeyError:
            raise FloorplanError(
                f"floorplan {self._name!r} has no block named {name!r}; "
                f"known blocks: {', '.join(self._index)}"
            ) from None

    def __repr__(self) -> str:
        return (
            f"Floorplan({self._name!r}, {len(self._blocks)} blocks, "
            f"die {self._outline.width * 1e3:.2f}x{self._outline.height * 1e3:.2f} mm)"
        )

    def index_of(self, name: str) -> int:
        """Canonical index of the named block (solver node ordering)."""
        try:
            return self._index[name]
        except KeyError:
            raise FloorplanError(
                f"floorplan {self._name!r} has no block named {name!r}"
            ) from None

    # -- derived metrics ---------------------------------------------------------

    @property
    def die_area(self) -> float:
        """Area of the die outline in square metres."""
        return self._outline.area

    @property
    def blocks_area(self) -> float:
        """Total area of all blocks in square metres."""
        return self._blocks_area

    @property
    def coverage(self) -> float:
        """Fraction of the die outline covered by blocks (0..1]."""
        return self._coverage

    def areas(self) -> Mapping[str, float]:
        """Mapping block name -> area (m^2)."""
        return {b.name: b.area for b in self._blocks}

    def area_ratio(self) -> float:
        """Largest block area divided by smallest block area.

        The paper's motivational argument rests on large power-density
        spread, which (for equal powers) equals the area spread; this
        metric quantifies it for a layout.
        """
        areas = [b.area for b in self._blocks]
        return max(areas) / min(areas)

    # -- transformation ------------------------------------------------------------

    def scaled(self, factor: float) -> "Floorplan":
        """A geometrically scaled copy (lengths multiplied by *factor*)."""
        if factor <= 0.0:
            raise GeometryError(f"scale factor must be positive, got {factor!r}")
        return Floorplan(
            [Block(b.name, b.rect.scaled(factor)) for b in self._blocks],
            name=self._name,
            outline=self._outline.scaled(factor),
        )

    def subset(self, names: list[str], name: str | None = None) -> "Floorplan":
        """A floorplan containing only the named blocks (same outline).

        Useful for didactic examples and tests; adjacency and boundary
        exposure are recomputed for the subset.
        """
        missing = [n for n in names if n not in self._index]
        if missing:
            raise FloorplanError(f"unknown blocks in subset: {missing}")
        picked = [self[n] for n in names]
        return Floorplan(
            picked,
            name=name if name is not None else f"{self._name}-subset",
            outline=self._outline,
        )

    # -- pretty printing --------------------------------------------------------------

    def describe(self) -> str:
        """Multi-line human-readable summary of the floorplan."""
        lines = [
            f"Floorplan {self._name!r}: {len(self)} blocks, "
            f"die {self._outline.width * 1e3:.3f} x {self._outline.height * 1e3:.3f} mm, "
            f"coverage {self._coverage * 100.0:.1f}%",
        ]
        widest = max(len(b.name) for b in self._blocks)
        for block in self._blocks:
            r = block.rect
            lines.append(
                f"  {block.name:<{widest}}  "
                f"{r.width * 1e3:7.3f} x {r.height * 1e3:7.3f} mm "
                f"at ({r.x * 1e3:7.3f}, {r.y * 1e3:7.3f}) mm  "
                f"area {r.area * 1e6:8.3f} mm^2"
            )
        return "\n".join(lines)


def floorplan_from_rects(
    rects: Mapping[str, Rect],
    name: str = "floorplan",
    outline: Rect | None = None,
    require_full_coverage: bool = False,
) -> Floorplan:
    """Convenience constructor from a ``{name: Rect}`` mapping."""
    blocks = [Block(block_name, rect) for block_name, rect in rects.items()]
    return Floorplan(
        blocks, name=name, outline=outline, require_full_coverage=require_full_coverage
    )

"""Floorplan geometry substrate (DESIGN.md system S1).

Public surface: rectangles and adjacency primitives, the validated
:class:`Floorplan` container, HotSpot ``.flp`` I/O, synthetic floorplan
generators, and the bundled layouts used by the paper's experiments.
"""

from .adjacency import AdjacencyMap, BoundarySegment, Interface, adjacency_graph
from .floorplan import Block, Floorplan, floorplan_from_rects
from .generator import grid_floorplan, slicing_floorplan
from .geometry import Rect, Side, boundary_exposure, shared_edge
from .hotspot_format import format_flp, parse_flp, read_flp, write_flp
from .render import render_floorplan
from .library import (
    ALPHA15_CLASSES,
    FIG1_CORE_POWER_W,
    FIG1_POWER_LIMIT_W,
    FIG1_SESSION_COOL,
    FIG1_SESSION_HOT,
    WORKED_EXAMPLE_SESSION,
    alpha15,
    hypothetical7,
    worked_example6,
)

__all__ = [
    "AdjacencyMap",
    "ALPHA15_CLASSES",
    "Block",
    "BoundarySegment",
    "FIG1_CORE_POWER_W",
    "FIG1_POWER_LIMIT_W",
    "FIG1_SESSION_COOL",
    "FIG1_SESSION_HOT",
    "Floorplan",
    "Interface",
    "Rect",
    "Side",
    "WORKED_EXAMPLE_SESSION",
    "adjacency_graph",
    "alpha15",
    "boundary_exposure",
    "floorplan_from_rects",
    "format_flp",
    "grid_floorplan",
    "hypothetical7",
    "parse_flp",
    "read_flp",
    "render_floorplan",
    "shared_edge",
    "slicing_floorplan",
    "worked_example6",
    "write_flp",
]

"""ASCII rendering of floorplans.

Draws the die as a character raster with one letter per block (plus a
legend), so layouts can be reviewed in a terminal or embedded in text
reports.  The thermal heatmap (:mod:`repro.thermal.heatmap`) uses the
same sampling scheme, so the two renderings line up cell for cell.
"""

from __future__ import annotations

import io
import string

from ..errors import FloorplanError
from .floorplan import Floorplan

#: Glyph alphabet for blocks (cycled if the floorplan is larger).
BLOCK_GLYPHS = string.ascii_uppercase + string.ascii_lowercase + string.digits


def render_floorplan(
    floorplan: Floorplan, width: int = 48, height: int = 24
) -> str:
    """Render a floorplan as an ASCII raster with a legend.

    Parameters
    ----------
    floorplan:
        The floorplan to draw.
    width, height:
        Raster size in characters (terminal cells are tall, so a 2:1
        ratio renders roughly square dies).

    Returns
    -------
    str
        The raster (north edge on top) and a block legend with
        dimensions and areas.
    """
    if width < 2 or height < 2:
        raise FloorplanError("floorplan raster must be at least 2x2")

    glyph_of = {
        block.name: BLOCK_GLYPHS[i % len(BLOCK_GLYPHS)]
        for i, block in enumerate(floorplan)
    }

    def cell(x: float, y: float) -> str:
        for block in floorplan:
            r = block.rect
            if r.x <= x < r.x2 and r.y <= y < r.y2:
                return glyph_of[block.name]
        return " "

    outline = floorplan.outline
    out = io.StringIO()
    out.write(
        f"{floorplan.name}: {len(floorplan)} blocks, "
        f"{outline.width * 1e3:.1f} x {outline.height * 1e3:.1f} mm\n"
    )
    out.write("+" + "-" * width + "+\n")
    for row in range(height):
        y = outline.y2 - (row + 0.5) * outline.height / height
        out.write("|")
        for col in range(width):
            x = outline.x + (col + 0.5) * outline.width / width
            out.write(cell(x, y))
        out.write("|\n")
    out.write("+" + "-" * width + "+\n")

    widest = max(len(b.name) for b in floorplan)
    for block in floorplan:
        r = block.rect
        out.write(
            f"  {glyph_of[block.name]} = {block.name:<{widest}}  "
            f"{r.width * 1e3:6.2f} x {r.height * 1e3:6.2f} mm  "
            f"({r.area * 1e6:7.2f} mm^2)\n"
        )
    return out.getvalue()

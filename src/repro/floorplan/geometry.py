"""Rectilinear geometry primitives for floorplans.

Floorplan blocks are axis-aligned rectangles on the die plane.  The
thermal model needs exact adjacency information: which blocks share an
edge, how long the shared segment is, and how much of each block's
perimeter faces the die boundary.  This module provides those primitives
with explicit tolerance handling, because floorplans written by humans
(or parsed from HotSpot ``.flp`` files) routinely carry 1e-6 m rounding
noise at block seams.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum

from ..errors import GeometryError

#: Geometric tolerance in metres.  Two coordinates closer than this are
#: considered equal.  1e-7 m = 0.1 micron, far below any feature size a
#: block-level floorplan would express (blocks are 0.1 mm and up).
GEOM_TOL = 1e-7


class Side(Enum):
    """The four sides of an axis-aligned rectangle."""

    NORTH = "north"
    SOUTH = "south"
    EAST = "east"
    WEST = "west"

    @property
    def opposite(self) -> "Side":
        """The facing side on a neighbouring rectangle."""
        return _OPPOSITE[self]

    @property
    def is_horizontal(self) -> bool:
        """True for NORTH/SOUTH (edges that run horizontally)."""
        return self in (Side.NORTH, Side.SOUTH)


_OPPOSITE = {
    Side.NORTH: Side.SOUTH,
    Side.SOUTH: Side.NORTH,
    Side.EAST: Side.WEST,
    Side.WEST: Side.EAST,
}


@dataclass(frozen=True)
class Rect:
    """An axis-aligned rectangle: origin at the lower-left corner.

    Follows the HotSpot ``.flp`` convention: ``(x, y)`` is the left-bottom
    corner, ``width`` extends along +x (east), ``height`` along +y
    (north).  All values are metres.

    Instances are immutable and hashable so they can key dictionaries
    and be shared between floorplans safely.
    """

    x: float
    y: float
    width: float
    height: float

    def __post_init__(self) -> None:
        if not all(math.isfinite(v) for v in (self.x, self.y, self.width, self.height)):
            raise GeometryError(f"rectangle has non-finite coordinates: {self!r}")
        if self.width <= GEOM_TOL or self.height <= GEOM_TOL:
            raise GeometryError(
                f"rectangle must have positive width and height "
                f"(got width={self.width!r}, height={self.height!r})"
            )

    # -- derived coordinates ------------------------------------------------

    @property
    def x2(self) -> float:
        """Right (east) edge x-coordinate."""
        return self.x + self.width

    @property
    def y2(self) -> float:
        """Top (north) edge y-coordinate."""
        return self.y + self.height

    @property
    def area(self) -> float:
        """Area in square metres."""
        return self.width * self.height

    @property
    def perimeter(self) -> float:
        """Perimeter length in metres."""
        return 2.0 * (self.width + self.height)

    @property
    def center(self) -> tuple[float, float]:
        """Centre point ``(cx, cy)``."""
        return (self.x + self.width / 2.0, self.y + self.height / 2.0)

    @property
    def aspect_ratio(self) -> float:
        """Width divided by height."""
        return self.width / self.height

    def side_length(self, side: Side) -> float:
        """Length of the given side (width for N/S, height for E/W)."""
        return self.width if side.is_horizontal else self.height

    def side_coordinate(self, side: Side) -> float:
        """The fixed coordinate of the given side.

        NORTH -> y2, SOUTH -> y, EAST -> x2, WEST -> x.
        """
        if side is Side.NORTH:
            return self.y2
        if side is Side.SOUTH:
            return self.y
        if side is Side.EAST:
            return self.x2
        return self.x

    # -- predicates ----------------------------------------------------------

    def contains_point(self, px: float, py: float, tol: float = GEOM_TOL) -> bool:
        """True if ``(px, py)`` lies inside or on the boundary."""
        return (
            self.x - tol <= px <= self.x2 + tol
            and self.y - tol <= py <= self.y2 + tol
        )

    def contains_rect(self, other: "Rect", tol: float = GEOM_TOL) -> bool:
        """True if *other* lies entirely inside (or on the boundary of) self."""
        return (
            other.x >= self.x - tol
            and other.y >= self.y - tol
            and other.x2 <= self.x2 + tol
            and other.y2 <= self.y2 + tol
        )

    def overlaps(self, other: "Rect", tol: float = GEOM_TOL) -> bool:
        """True if the open interiors of the two rectangles intersect.

        Rectangles that merely touch along an edge or a corner do *not*
        overlap: that is the adjacency case handled by
        :func:`shared_edge`.
        """
        return (
            self.x < other.x2 - tol
            and other.x < self.x2 - tol
            and self.y < other.y2 - tol
            and other.y < self.y2 - tol
        )

    def overlap_area(self, other: "Rect") -> float:
        """Area of the intersection (0.0 when disjoint or merely touching)."""
        dx = min(self.x2, other.x2) - max(self.x, other.x)
        dy = min(self.y2, other.y2) - max(self.y, other.y)
        if dx <= 0.0 or dy <= 0.0:
            return 0.0
        return dx * dy

    # -- construction helpers -------------------------------------------------

    @classmethod
    def from_corners(cls, x1: float, y1: float, x2: float, y2: float) -> "Rect":
        """Build a rectangle from two opposite corners (any order)."""
        x_low, x_high = min(x1, x2), max(x1, x2)
        y_low, y_high = min(y1, y2), max(y1, y2)
        return cls(x_low, y_low, x_high - x_low, y_high - y_low)

    def translated(self, dx: float, dy: float) -> "Rect":
        """A copy of this rectangle shifted by ``(dx, dy)``."""
        return Rect(self.x + dx, self.y + dy, self.width, self.height)

    def scaled(self, factor: float) -> "Rect":
        """A copy with all coordinates multiplied by *factor* (about origin)."""
        if factor <= 0.0:
            raise GeometryError(f"scale factor must be positive, got {factor!r}")
        return Rect(self.x * factor, self.y * factor, self.width * factor, self.height * factor)


def _interval_overlap(a1: float, a2: float, b1: float, b2: float) -> float:
    """Length of the overlap between intervals [a1,a2] and [b1,b2]."""
    return min(a2, b2) - max(a1, b1)


def shared_edge(a: Rect, b: Rect, tol: float = GEOM_TOL) -> tuple[Side, float] | None:
    """Detect edge adjacency between two rectangles.

    Returns ``(side, length)`` where *side* is the side of **a** that
    touches **b** and *length* is the length of the shared segment, or
    ``None`` if the rectangles are not edge-adjacent.  Corner-only
    contact (shared segment of length <= *tol*) is not adjacency: no
    meaningful heat flows through a zero-width interface in a
    block-level model.

    The test requires the facing edges to be coincident within *tol*;
    overlapping rectangles are reported as non-adjacent (the floorplan
    validator rejects them separately).
    """
    if a.overlaps(b, tol):
        return None

    # Vertical adjacency: a's EAST edge against b's WEST edge, or vice versa.
    if abs(a.x2 - b.x) <= tol:
        length = _interval_overlap(a.y, a.y2, b.y, b.y2)
        if length > tol:
            return (Side.EAST, length)
    if abs(b.x2 - a.x) <= tol:
        length = _interval_overlap(a.y, a.y2, b.y, b.y2)
        if length > tol:
            return (Side.WEST, length)

    # Horizontal adjacency: a's NORTH edge against b's SOUTH edge, or vice versa.
    if abs(a.y2 - b.y) <= tol:
        length = _interval_overlap(a.x, a.x2, b.x, b.x2)
        if length > tol:
            return (Side.NORTH, length)
    if abs(b.y2 - a.y) <= tol:
        length = _interval_overlap(a.x, a.x2, b.x, b.x2)
        if length > tol:
            return (Side.SOUTH, length)

    return None


def boundary_exposure(block: Rect, outline: Rect, tol: float = GEOM_TOL) -> dict[Side, float]:
    """Length of each side of *block* that lies on the *outline* boundary.

    Used to model the die-edge heat path: a block flush with the die
    boundary has no lateral neighbour on that side, and in the paper's
    session thermal model the corresponding resistance connects the
    block to the package via the die edge (e.g. ``R_4,W`` and ``R_4,S``
    in Figure 3 connect core 4 to the west and south die edges).

    Returns a mapping from side to exposed length; sides not flush with
    the outline are omitted.
    """
    if not outline.contains_rect(block, tol):
        raise GeometryError(
            f"block {block!r} is not contained in the die outline {outline!r}"
        )
    exposure: dict[Side, float] = {}
    if abs(block.y2 - outline.y2) <= tol:
        exposure[Side.NORTH] = block.width
    if abs(block.y - outline.y) <= tol:
        exposure[Side.SOUTH] = block.width
    if abs(block.x2 - outline.x2) <= tol:
        exposure[Side.EAST] = block.height
    if abs(block.x - outline.x) <= tol:
        exposure[Side.WEST] = block.height
    return exposure


def bounding_box(rects: list[Rect]) -> Rect:
    """The smallest rectangle enclosing all *rects*."""
    if not rects:
        raise GeometryError("bounding_box() of an empty rectangle list")
    x1 = min(r.x for r in rects)
    y1 = min(r.y for r in rects)
    x2 = max(r.x2 for r in rects)
    y2 = max(r.y2 for r in rects)
    return Rect.from_corners(x1, y1, x2, y2)


def total_area(rects: list[Rect]) -> float:
    """Sum of the areas of non-overlapping rectangles.

    The caller is responsible for ensuring the rectangles do not overlap
    (the floorplan validator checks this); the value is then also the
    area of their union.
    """
    return math.fsum(r.area for r in rects)

"""Reader/writer for the HotSpot ``.flp`` floorplan format.

HotSpot (Skadron et al., the thermal simulator the paper validates
against) describes floorplans as plain-text files with one block per
line::

    <unit-name>\t<width>\t<height>\t<left-x>\t<bottom-y>

All lengths in metres; lines starting with ``#`` are comments; blank
lines are ignored.  This module supports that format exactly so users
can import real HotSpot floorplans and export ours for cross-checking
with the original tool.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import TextIO

from ..errors import FloorplanFormatError
from .floorplan import Block, Floorplan
from .geometry import Rect

#: Number of whitespace-separated fields on a HotSpot .flp block line.
_FIELDS_PER_LINE = 5


def parse_flp(text: str, name: str = "floorplan") -> Floorplan:
    """Parse HotSpot ``.flp`` content into a :class:`Floorplan`.

    Parameters
    ----------
    text:
        The file content.
    name:
        Name to give the resulting floorplan.

    Raises
    ------
    FloorplanFormatError
        On malformed lines, non-numeric fields, or non-positive sizes.
    """
    blocks: list[Block] = []
    for line_no, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.strip()
        if not line or line.startswith("#"):
            continue
        fields = line.split()
        if len(fields) != _FIELDS_PER_LINE:
            raise FloorplanFormatError(
                f"line {line_no}: expected {_FIELDS_PER_LINE} fields "
                f"(name width height left-x bottom-y), got {len(fields)}: {line!r}"
            )
        block_name = fields[0]
        try:
            width, height, x, y = (float(f) for f in fields[1:])
        except ValueError as exc:
            raise FloorplanFormatError(
                f"line {line_no}: non-numeric coordinate in {line!r}"
            ) from exc
        if width <= 0.0 or height <= 0.0:
            raise FloorplanFormatError(
                f"line {line_no}: block {block_name!r} has non-positive size "
                f"{width!r} x {height!r}"
            )
        blocks.append(Block(block_name, Rect(x, y, width, height)))
    if not blocks:
        raise FloorplanFormatError("no blocks found in .flp content")
    return Floorplan(blocks, name=name)


def read_flp(path: str | Path) -> Floorplan:
    """Read a HotSpot ``.flp`` file from disk."""
    path = Path(path)
    try:
        text = path.read_text()
    except OSError as exc:
        raise FloorplanFormatError(f"cannot read floorplan file {path}: {exc}") from exc
    return parse_flp(text, name=path.stem)


def format_flp(floorplan: Floorplan, header: bool = True) -> str:
    """Serialise a floorplan to HotSpot ``.flp`` text.

    Round-trips with :func:`parse_flp` up to float formatting (17
    significant digits are used, enough to reproduce any double
    exactly).
    """
    out = io.StringIO()
    if header:
        out.write(f"# Floorplan {floorplan.name!r} exported by repro\n")
        out.write("# Format: <unit-name> <width> <height> <left-x> <bottom-y>\n")
        out.write("# All dimensions are in meters (HotSpot convention)\n")
    for block in floorplan:
        r = block.rect
        out.write(f"{block.name}\t{r.width:.17g}\t{r.height:.17g}\t{r.x:.17g}\t{r.y:.17g}\n")
    return out.getvalue()


def write_flp(floorplan: Floorplan, path: str | Path) -> None:
    """Write a floorplan to a HotSpot ``.flp`` file."""
    Path(path).write_text(format_flp(floorplan))


def dump_flp(floorplan: Floorplan, stream: TextIO) -> None:
    """Write ``.flp`` text to an open text stream."""
    stream.write(format_flp(floorplan))

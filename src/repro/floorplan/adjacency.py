"""Thermal adjacency extraction from a floorplan.

The RC thermal model (both the full simulator and the paper's
test-session model) needs, for every block:

* which other blocks it touches, through which side, and over what
  shared edge length — this sizes the lateral block-to-block thermal
  resistance;
* how much of its perimeter lies on the die boundary — this sizes the
  lateral block-to-die-edge resistance (the ``R_4,W`` / ``R_4,S`` paths
  of the paper's Figure 3);
* how much of its perimeter faces *uncovered* die area, when the blocks
  do not tile the die completely.

This module computes all of that once per floorplan and exposes it as an
:class:`AdjacencyMap` plus a :func:`adjacency_graph` view as a
``networkx.Graph`` for analysis and tests.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator

import networkx as nx

from ..errors import FloorplanError
from .floorplan import Floorplan
from .geometry import GEOM_TOL, Side, boundary_exposure, shared_edge


@dataclass(frozen=True)
class Interface:
    """A shared edge between two blocks.

    Attributes
    ----------
    block_a, block_b:
        Names of the touching blocks (``block_a < block_b`` lexically so
        each physical interface appears exactly once).
    side_of_a:
        The side of *block_a* that touches *block_b*.
    length:
        Shared edge length in metres.
    """

    block_a: str
    block_b: str
    side_of_a: Side
    length: float

    def other(self, name: str) -> str:
        """The block on the opposite side of the interface from *name*."""
        if name == self.block_a:
            return self.block_b
        if name == self.block_b:
            return self.block_a
        raise FloorplanError(f"block {name!r} is not part of interface {self!r}")

    def side_of(self, name: str) -> Side:
        """The side of the named block that this interface occupies."""
        if name == self.block_a:
            return self.side_of_a
        if name == self.block_b:
            return self.side_of_a.opposite
        raise FloorplanError(f"block {name!r} is not part of interface {self!r}")


@dataclass(frozen=True)
class BoundarySegment:
    """A stretch of a block's side that lies on the die boundary."""

    block: str
    side: Side
    length: float


class AdjacencyMap:
    """Precomputed adjacency information for one floorplan.

    Built once (O(n^2) in the number of blocks) and then queried by the
    thermal network builder and by the session thermal model.
    """

    def __init__(self, floorplan: Floorplan, tol: float = GEOM_TOL) -> None:
        self._floorplan = floorplan
        self._interfaces: list[Interface] = []
        self._by_block: dict[str, list[Interface]] = {b.name: [] for b in floorplan}
        self._boundary: dict[str, list[BoundarySegment]] = {
            b.name: [] for b in floorplan
        }

        blocks = list(floorplan)
        for i, a in enumerate(blocks):
            for b in blocks[i + 1 :]:
                edge = shared_edge(a.rect, b.rect, tol)
                if edge is None:
                    continue
                side_of_a, length = edge
                first, second = sorted((a.name, b.name))
                side = side_of_a if first == a.name else side_of_a.opposite
                interface = Interface(first, second, side, length)
                self._interfaces.append(interface)
                self._by_block[a.name].append(interface)
                self._by_block[b.name].append(interface)

        for block in blocks:
            exposure = boundary_exposure(block.rect, floorplan.outline, tol)
            for side, length in exposure.items():
                self._boundary[block.name].append(
                    BoundarySegment(block.name, side, length)
                )

    # -- queries -----------------------------------------------------------------

    @property
    def floorplan(self) -> Floorplan:
        """The floorplan this map was built from."""
        return self._floorplan

    @property
    def interfaces(self) -> tuple[Interface, ...]:
        """All block-to-block interfaces (each physical edge once)."""
        return tuple(self._interfaces)

    def interfaces_of(self, name: str) -> tuple[Interface, ...]:
        """All interfaces that involve the named block."""
        try:
            return tuple(self._by_block[name])
        except KeyError:
            raise FloorplanError(f"unknown block {name!r}") from None

    def neighbours(self, name: str) -> tuple[str, ...]:
        """Names of the blocks edge-adjacent to the named block."""
        return tuple(i.other(name) for i in self.interfaces_of(name))

    def boundary_segments(self, name: str) -> tuple[BoundarySegment, ...]:
        """Die-boundary segments of the named block."""
        try:
            return tuple(self._boundary[name])
        except KeyError:
            raise FloorplanError(f"unknown block {name!r}") from None

    def boundary_length(self, name: str) -> float:
        """Total perimeter of the named block lying on the die boundary."""
        return math.fsum(s.length for s in self.boundary_segments(name))

    def interface_between(self, a: str, b: str) -> Interface | None:
        """The interface between two named blocks, or None."""
        for interface in self.interfaces_of(a):
            if interface.other(a) == b:
                return interface
        return None

    def iter_block_names(self) -> Iterator[str]:
        """Iterate block names in canonical floorplan order."""
        return iter(self._floorplan.block_names)

    # -- diagnostics --------------------------------------------------------------

    def unaccounted_perimeter(self, name: str) -> float:
        """Perimeter of the block facing neither a neighbour nor the die edge.

        Non-zero only when the floorplan does not fully tile the die
        (white space).  The thermal builder treats such perimeter as
        adiabatic, which matches HotSpot's block-mode behaviour for
        non-tiling floorplans.
        """
        block = self._floorplan[name]
        accounted = math.fsum(
            i.length for i in self.interfaces_of(name)
        ) + self.boundary_length(name)
        return max(0.0, block.rect.perimeter - accounted)

    def is_fully_tiled(self, rel_tol: float = 1e-6) -> bool:
        """True when every block edge faces either a neighbour or the die edge."""
        for name in self.iter_block_names():
            block = self._floorplan[name]
            if self.unaccounted_perimeter(name) > rel_tol * block.rect.perimeter:
                return False
        return True


def adjacency_graph(adjacency: AdjacencyMap) -> nx.Graph:
    """A ``networkx`` view of the block adjacency.

    Nodes are block names (with ``area`` attributes); edges carry the
    shared edge ``length``.  Used by tests (connectivity, symmetry) and
    available to users for floorplan analysis.
    """
    graph = nx.Graph(name=adjacency.floorplan.name)
    for block in adjacency.floorplan:
        graph.add_node(block.name, area=block.area)
    for interface in adjacency.interfaces:
        graph.add_edge(
            interface.block_a,
            interface.block_b,
            length=interface.length,
            side_of_a=interface.side_of_a.value,
        )
    return graph

"""SoC-under-test modelling (DESIGN.md system S4)."""

from .core import DEFAULT_TEST_TIME_S, CoreUnderTest
from .library import alpha15_soc, grid_soc, hypothetical7_soc, worked_example6_soc
from .system import SocUnderTest

__all__ = [
    "CoreUnderTest",
    "DEFAULT_TEST_TIME_S",
    "SocUnderTest",
    "alpha15_soc",
    "grid_soc",
    "hypothetical7_soc",
    "worked_example6_soc",
]

"""Prebuilt SoCs for the paper's experiments.

The central asset is :func:`alpha15_soc`, the reproduction of the
paper's experimental platform: the 15-block Alpha-21364-class floorplan
with test powers between 1.5x and 8x functional power.  The authors'
power values were never published, so ours are a **calibrated
reconstruction** (DESIGN.md, substitution 3):

* :data:`ALPHA15_TEST_POWERS_W` — per-core test powers.  They were
  derived by (a) giving every core a *graded* target for its singleton
  session thermal characteristic (the hot execution units at the top of
  the band, the caches at the bottom, matching the density ordering of
  a real Alpha) and (b) scaling the whole table so that every core
  tested alone stays well below the paper's tightest limit TL = 145
  degC (our max is about 100 degC) while testing everything
  concurrently overshoots the loosest limit TL = 185 degC (about 273
  degC).  This brackets the paper's entire TL sweep inside the
  interesting regime.
* :data:`ALPHA15_STC_SCALE` — normalisation of the session thermal
  characteristic, chosen so every singleton STC is below the paper's
  tightest STCL of 20 (as the paper's Algorithm 1 requires — a core
  whose singleton STC exceeded STCL could never be scheduled) and the
  paper's STCL axis (20..100) spans the trade-off from short, violation
  -prone schedules to conservative first-attempt-safe ones.
* Functional powers are test powers divided by seeded multipliers drawn
  from the paper's stated 1.5x-8x range
  (:data:`ALPHA15_POWER_SEED`); they do not affect scheduling.

The calibration measurements are reproducible via
``python -m repro.experiments.calibration``.
"""

from __future__ import annotations

import numpy as np

from ..errors import PowerModelError
from ..floorplan.generator import grid_floorplan
from ..floorplan.library import (
    FIG1_CORE_POWER_W,
    alpha15,
    hypothetical7,
    worked_example6,
)
from ..power.generator import (
    PowerGeneratorConfig,
    generate_power_profile,
    uniform_test_power_profile,
)
from ..power.profile import PAPER_MULTIPLIER_RANGE, CorePower, PowerProfile
from ..thermal.package import DEFAULT_PACKAGE, PackageConfig
from .core import DEFAULT_TEST_TIME_S
from .system import SocUnderTest

#: Seed of the alpha15 test-multiplier draw (fixed forever; changing it
#: would change every number in EXPERIMENTS.md).
ALPHA15_POWER_SEED = 2005

#: Calibrated per-core test powers (watts); see the module docstring.
#: Total: about 357 W — aggressive, but the paper itself cites scan
#: test consuming up to 30x mission power [Shi & Kapur 2004].
ALPHA15_TEST_POWERS_W = {
    "L2": 21.36,
    "L2_left": 20.27,
    "L2_right": 21.05,
    "Icache": 22.43,
    "Dcache": 21.91,
    "Bpred": 22.72,
    "ITB": 22.49,
    "DTB": 25.04,
    "LdStQ": 24.40,
    "FPMul": 29.41,
    "FPAdd": 27.52,
    "FPReg": 27.42,
    "IntMap": 19.75,
    "IntExec": 26.14,
    "IntReg": 24.85,
}

#: STC normalisation for the alpha15 SoC (see module docstring).
ALPHA15_STC_SCALE = 210.0


def alpha15_power_profile(seed: int = ALPHA15_POWER_SEED) -> PowerProfile:
    """The calibrated alpha15 power profile.

    Test powers come from :data:`ALPHA15_TEST_POWERS_W`; functional
    powers are derived by dividing by per-core multipliers drawn
    uniformly (seeded) from the paper's 1.5x-8x range.
    """
    rng = np.random.default_rng(seed)
    low, high = PAPER_MULTIPLIER_RANGE
    cores = []
    for name, test_w in ALPHA15_TEST_POWERS_W.items():
        multiplier = float(rng.uniform(low, high))
        cores.append(CorePower(name, test_w / multiplier, test_w))
    profile = PowerProfile(cores, name=f"alpha15-power-s{seed}")
    profile.check_paper_multiplier_range()
    return profile


def alpha15_soc(
    package: PackageConfig = DEFAULT_PACKAGE,
    power_scale: float = 1.0,
    seed: int = ALPHA15_POWER_SEED,
    test_time_s: float = DEFAULT_TEST_TIME_S,
) -> SocUnderTest:
    """The paper's experimental platform: 15-core Alpha-class SoC.

    Parameters are exposed for sensitivity studies; the defaults are
    the calibrated reproduction configuration.
    """
    if power_scale <= 0.0:
        raise PowerModelError(f"power_scale must be positive, got {power_scale!r}")
    floorplan = alpha15()
    profile = alpha15_power_profile(seed)
    if power_scale != 1.0:
        profile = profile.scaled(power_scale)
    return SocUnderTest.from_profile(
        floorplan, profile, package=package, test_time_s=test_time_s, name="alpha15"
    )


def hypothetical7_soc(
    package: PackageConfig = DEFAULT_PACKAGE,
    core_power_w: float = FIG1_CORE_POWER_W,
    test_time_s: float = DEFAULT_TEST_TIME_S,
) -> SocUnderTest:
    """The Figure 1 motivational system: 7 cores at equal test power.

    Every core dissipates ``core_power_w`` (paper: 15 W) during test,
    so power density varies only through block area — the configuration
    that makes a chip-level power cap blind to hot spots.
    """
    floorplan = hypothetical7()
    profile = uniform_test_power_profile(floorplan, core_power_w)
    return SocUnderTest.from_profile(
        floorplan,
        profile,
        package=package,
        test_time_s=test_time_s,
        name="hypothetical7",
    )


def worked_example6_soc(
    package: PackageConfig = DEFAULT_PACKAGE,
    core_power_w: float = 10.0,
    test_time_s: float = DEFAULT_TEST_TIME_S,
) -> SocUnderTest:
    """The Figures 2-4 didactic system (6 blocks, session {B2, B4, B5})."""
    floorplan = worked_example6()
    profile = uniform_test_power_profile(floorplan, core_power_w)
    return SocUnderTest.from_profile(
        floorplan,
        profile,
        package=package,
        test_time_s=test_time_s,
        name="worked_example6",
    )


def grid_soc(
    rows: int,
    cols: int,
    package: PackageConfig = DEFAULT_PACKAGE,
    seed: int = 0,
    power_scale: float = 1.0,
    test_time_s: float = DEFAULT_TEST_TIME_S,
) -> SocUnderTest:
    """A synthetic uniform-grid SoC for scaling studies and tests."""
    floorplan = grid_floorplan(rows, cols)
    profile = generate_power_profile(
        floorplan, config=PowerGeneratorConfig(seed=seed)
    )
    if power_scale != 1.0:
        profile = profile.scaled(power_scale)
    return SocUnderTest.from_profile(
        floorplan, profile, package=package, test_time_s=test_time_s
    )

"""Core-under-test description.

A :class:`CoreUnderTest` bundles what the scheduler needs to know about
one core: its identity (which must match a floorplan block), its test
power, and how long its test takes.  The paper's experiments use
equal-length tests (schedule length is reported in whole seconds and
equals the session count), so the default test time is 1 s, but the
data model supports heterogeneous test lengths: a session's duration is
the maximum test time of its members (tests run concurrently).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import PowerModelError

#: Default per-core test application time (seconds).  The paper's
#: schedule lengths count sessions at one second each.
DEFAULT_TEST_TIME_S = 1.0


@dataclass(frozen=True)
class CoreUnderTest:
    """One testable core of the SoC.

    Attributes
    ----------
    name:
        Core name; must match a floorplan block name.
    test_power_w:
        Average power dissipated while this core's test runs (W).
    functional_power_w:
        Average mission-mode power (W); recorded for reporting and for
        checking the paper's 1.5x-8x test-power premise.
    test_time_s:
        Test application time (s).
    """

    name: str
    test_power_w: float
    functional_power_w: float
    test_time_s: float = DEFAULT_TEST_TIME_S

    def __post_init__(self) -> None:
        if not self.name:
            raise PowerModelError("core name must be non-empty")
        if self.test_power_w <= 0.0:
            raise PowerModelError(
                f"core {self.name!r}: test power must be positive, "
                f"got {self.test_power_w!r}"
            )
        if self.functional_power_w <= 0.0:
            raise PowerModelError(
                f"core {self.name!r}: functional power must be positive, "
                f"got {self.functional_power_w!r}"
            )
        if self.test_time_s <= 0.0:
            raise PowerModelError(
                f"core {self.name!r}: test time must be positive, "
                f"got {self.test_time_s!r}"
            )

    @property
    def test_multiplier(self) -> float:
        """Test power divided by functional power."""
        return self.test_power_w / self.functional_power_w

"""The system under test: floorplan + cores + package.

:class:`SocUnderTest` is the object every scheduler and experiment takes
as input.  It guarantees at construction time that the floorplan, the
core list and (optionally) a power profile are mutually consistent, and
it provides the session-to-power-map translation that both the thermal
simulator and the session thermal model consume.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from ..errors import PowerModelError
from ..floorplan.adjacency import AdjacencyMap
from ..floorplan.floorplan import Floorplan
from ..power.profile import PowerProfile
from ..thermal.package import DEFAULT_PACKAGE, PackageConfig
from .core import DEFAULT_TEST_TIME_S, CoreUnderTest


class SocUnderTest:
    """A testable SoC: floorplan, per-core test data and package stack.

    Parameters
    ----------
    floorplan:
        The die floorplan; every core must correspond to a block.
    cores:
        The cores to be tested.  Every floorplan block must appear
        exactly once (the paper tests all 15 cores of its SoC).
    package:
        Package thermal stack (defaults to the library default).
    name:
        System name for reports (defaults to the floorplan name).
    """

    def __init__(
        self,
        floorplan: Floorplan,
        cores: list[CoreUnderTest],
        package: PackageConfig = DEFAULT_PACKAGE,
        name: str | None = None,
    ) -> None:
        self._floorplan = floorplan
        self._package = package
        self._name = name if name is not None else floorplan.name
        self._cores: dict[str, CoreUnderTest] = {}
        for core in cores:
            if core.name in self._cores:
                raise PowerModelError(f"duplicate core {core.name!r} in SoC")
            if core.name not in floorplan:
                raise PowerModelError(
                    f"core {core.name!r} has no matching floorplan block in "
                    f"{floorplan.name!r}"
                )
            self._cores[core.name] = core
        unpowered = [b for b in floorplan.block_names if b not in self._cores]
        if unpowered:
            raise PowerModelError(
                f"floorplan blocks without core data: {unpowered}"
            )
        self._adjacency = AdjacencyMap(floorplan)

    # -- construction from a power profile ----------------------------------------

    @classmethod
    def from_profile(
        cls,
        floorplan: Floorplan,
        profile: PowerProfile,
        package: PackageConfig = DEFAULT_PACKAGE,
        test_time_s: float = DEFAULT_TEST_TIME_S,
        name: str | None = None,
    ) -> "SocUnderTest":
        """Build a SoC from a floorplan and a :class:`PowerProfile`."""
        profile.validate_against(floorplan)
        cores = [
            CoreUnderTest(
                cp.name,
                test_power_w=cp.test_w,
                functional_power_w=cp.functional_w,
                test_time_s=test_time_s,
            )
            for cp in profile
        ]
        return cls(floorplan, cores, package=package, name=name)

    # -- identity -------------------------------------------------------------------

    @property
    def name(self) -> str:
        """System name."""
        return self._name

    @property
    def floorplan(self) -> Floorplan:
        """The die floorplan."""
        return self._floorplan

    @property
    def adjacency(self) -> AdjacencyMap:
        """Precomputed adjacency map of the floorplan."""
        return self._adjacency

    @property
    def package(self) -> PackageConfig:
        """Package thermal stack."""
        return self._package

    @property
    def core_names(self) -> tuple[str, ...]:
        """Core names in floorplan (canonical) order."""
        return tuple(n for n in self._floorplan.block_names)

    def __len__(self) -> int:
        return len(self._cores)

    def __iter__(self) -> Iterator[CoreUnderTest]:
        for name in self.core_names:
            yield self._cores[name]

    def __contains__(self, name: object) -> bool:
        return name in self._cores

    def __getitem__(self, name: str) -> CoreUnderTest:
        try:
            return self._cores[name]
        except KeyError:
            raise PowerModelError(
                f"SoC {self._name!r} has no core named {name!r}"
            ) from None

    def __repr__(self) -> str:
        return f"SocUnderTest({self._name!r}, {len(self)} cores)"

    # -- power maps --------------------------------------------------------------------

    def session_power_map(self, active: Iterable[str]) -> dict[str, float]:
        """Test-power map (W by block) for a session's active set.

        Passive cores are omitted: during a test session only the cores
        under test dissipate test power (the paper's session model
        assumption; passive cores' leakage is neglected as HotSpot runs
        in the paper do).
        """
        power: dict[str, float] = {}
        for name in active:
            if name in power:
                raise PowerModelError(f"core {name!r} repeated in active set")
            power[name] = self[name].test_power_w
        return power

    def session_duration_s(self, active: Iterable[str]) -> float:
        """Duration of a session: the longest member test (s)."""
        times = [self[name].test_time_s for name in active]
        if not times:
            raise PowerModelError("session duration of an empty active set")
        return max(times)

    def total_test_power_w(self, active: Iterable[str] | None = None) -> float:
        """Total test power (W) of an active set (all cores when None)."""
        names = self.core_names if active is None else list(active)
        return math.fsum(self[name].test_power_w for name in names)

    def test_power_map(self) -> dict[str, float]:
        """Test power of every core (W by name)."""
        return {name: self[name].test_power_w for name in self.core_names}

    def power_densities(self) -> dict[str, float]:
        """Test power density (W/m^2) of every core."""
        return {
            name: self[name].test_power_w / self._floorplan[name].area
            for name in self.core_names
        }

    # -- reporting ----------------------------------------------------------------------

    def describe(self) -> str:
        """Multi-line human-readable summary of the SoC."""
        lines = [
            f"SoC {self._name!r}: {len(self)} cores, total test power "
            f"{self.total_test_power_w():.1f} W"
        ]
        widest = max(len(n) for n in self.core_names)
        densities = self.power_densities()
        for name in self.core_names:
            core = self[name]
            lines.append(
                f"  {name:<{widest}}  test {core.test_power_w:7.2f} W "
                f"({core.test_multiplier:4.2f}x functional)  "
                f"density {densities[name] / 1e4:7.2f} W/cm^2  "
                f"test time {core.test_time_s:g} s"
            )
        return "\n".join(lines)

"""Exploring the STCL trade-off (the paper's Figure 5, interactively).

The session thermal characteristic limit is the paper's user-selectable
knob: relaxed values chase short schedules at the cost of many
discarded (but simulated) candidate sessions; tight values find safe
schedules on the first attempt but give up concurrency.  This script
sweeps STCL at a fixed temperature limit and prints the trade-off table
and an ASCII rendering of the two curves.

Run:  python examples/stcl_exploration.py [TL_degC]
"""

from __future__ import annotations

import sys

from repro.experiments.reporting import ascii_series_plot, format_table
from repro.experiments.sweep import PAPER_STCL_VALUES, run_sweep
from repro.soc.library import alpha15_soc


def main() -> None:
    tl_c = float(sys.argv[1]) if len(sys.argv) > 1 else 155.0
    soc = alpha15_soc()
    grid = run_sweep(
        soc=soc, tl_values_c=(tl_c,), stcl_values=PAPER_STCL_VALUES
    )
    row = grid.row(tl_c)

    print(
        format_table(
            ["STCL", "length (s)", "effort (s)", "max T (degC)",
             "discards", "first-attempt safe"],
            [
                (
                    f"{p.stcl:g}",
                    p.length_s,
                    p.effort_s,
                    p.max_temperature_c,
                    p.n_discarded,
                    "yes" if p.first_attempt_safe else "no",
                )
                for p in row
            ],
            title=f"STCL sweep at TL = {tl_c:g} degC (alpha15)",
        )
    )

    print(
        ascii_series_plot(
            {
                "schedule length": {p.stcl: p.length_s for p in row},
                "simulation effort": {p.stcl: p.effort_s for p in row},
            },
            title="length and effort vs STCL (seconds)",
        )
    )

    cheapest = min(row, key=lambda p: p.effort_s)
    shortest = min(row, key=lambda p: p.length_s)
    print(
        f"shortest schedule: {shortest.length_s:g} s at STCL={shortest.stcl:g} "
        f"(effort {shortest.effort_s:g} s)"
    )
    print(
        f"cheapest search  : effort {cheapest.effort_s:g} s at "
        f"STCL={cheapest.stcl:g} (length {cheapest.length_s:g} s)"
    )


if __name__ == "__main__":
    main()

"""Bring your own SoC: custom floorplan, generated powers, scheduling.

Shows the full user workflow on a design that is not bundled with the
library:

1. describe a floorplan in HotSpot ``.flp`` syntax (or build one with
   the slicing-tree generator);
2. generate a test power profile in the paper's 1.5x-8x regime;
3. derive the calibration points (hottest singleton, full concurrency,
   singleton STC range) that choose sensible TL / STCL values;
4. schedule and audit.

Run:  python examples/custom_floorplan.py
"""

from __future__ import annotations

from repro import ThermalAwareScheduler, audit_schedule
from repro.core.session_model import SessionModelConfig, SessionThermalModel
from repro.floorplan import parse_flp
from repro.power import PowerGeneratorConfig, generate_power_profile
from repro.soc import SocUnderTest
from repro.thermal import ThermalSimulator

# An 8-block 12x12 mm SoC: two big accelerators, a CPU cluster of four
# small cores, an IO block and an SRAM.  HotSpot .flp syntax: name,
# width, height, left-x, bottom-y (metres).
CUSTOM_FLP = """
npu     0.0060  0.0072  0.0000  0.0048
gpu     0.0060  0.0048  0.0000  0.0000
cpu0    0.0030  0.0024  0.0060  0.0096
cpu1    0.0030  0.0024  0.0090  0.0096
cpu2    0.0030  0.0024  0.0060  0.0072
cpu3    0.0030  0.0024  0.0090  0.0072
sram    0.0060  0.0048  0.0060  0.0024
io      0.0060  0.0024  0.0060  0.0000
"""


def main() -> None:
    floorplan = parse_flp(CUSTOM_FLP, name="custom8")
    print(floorplan.describe())
    print()

    profile = generate_power_profile(
        floorplan,
        config=PowerGeneratorConfig(seed=11),
        block_classes={
            "npu": "execution",
            "gpu": "execution",
            "cpu0": "control",
            "cpu1": "control",
            "cpu2": "control",
            "cpu3": "control",
            "sram": "cache",
            "io": "cache",
        },
    ).scaled(3.0)
    soc = SocUnderTest.from_profile(floorplan, profile, name="custom8")
    print(soc.describe())
    print()

    # Calibration points: what regime does this SoC live in?
    simulator = ThermalSimulator(soc.floorplan, soc.package, soc.adjacency)
    model = SessionThermalModel(soc, SessionModelConfig())
    hottest_alone = max(
        simulator.steady_state({n: soc[n].test_power_w}).temperature_c(n)
        for n in soc.core_names
    )
    all_active = simulator.steady_state(soc.test_power_map()).max_temperature_c()
    singleton_stcs = [
        model.session_thermal_characteristic([n]) for n in soc.core_names
    ]
    print(f"hottest core alone : {hottest_alone:.1f} degC")
    print(f"everything at once : {all_active:.1f} degC")
    print(
        f"singleton STC range: {min(singleton_stcs):.1f} .. "
        f"{max(singleton_stcs):.1f}"
    )

    # Pick limits inside that regime: TL halfway, STCL at 2x the max
    # singleton (same recipe the alpha15 calibration used).
    tl_c = (hottest_alone + all_active) / 2.0
    stcl = 2.0 * max(singleton_stcs)
    print(f"chosen limits      : TL = {tl_c:.1f} degC, STCL = {stcl:.1f}")
    print()

    result = ThermalAwareScheduler(
        soc, simulator=simulator, session_model=model
    ).schedule(tl_c=tl_c, stcl=stcl)
    print(result.describe())
    print()

    audit = audit_schedule(result.schedule, limit_c=tl_c, simulator=simulator)
    print(audit.describe())


if __name__ == "__main__":
    main()

"""Power-safe is not thermal-safe: the paper's Figure 1, executable.

A chip-level power cap treats every watt the same no matter where it
lands on the die.  On the hypothetical 7-core system (all cores 15 W),
a 45 W cap happily accepts both

* the *hot* session {C2, C3, C4} — three tiny, mutually adjacent cores
  with 4x the power density of
* the *cool* session {C5, C6, C7} — three large, spread-out cores,

yet simulation shows a dramatic temperature gap.  The script then runs
both a power-constrained baseline and the thermal-aware scheduler on
the same SoC and audits their schedules against the same limit.

Run:  python examples/power_vs_thermal.py
"""

from __future__ import annotations

from repro import (
    PowerConstrainedConfig,
    PowerConstrainedScheduler,
    ThermalAwareScheduler,
    audit_schedule,
    hypothetical7_soc,
)
from repro.core.session_model import SessionModelConfig, SessionThermalModel
from repro.experiments.fig1 import report_fig1

POWER_CAP_W = 45.0


def main() -> None:
    # Part 1 — the paper's motivational comparison.
    print(report_fig1())

    # Part 2 — schedule the whole SoC both ways and audit.
    soc = hypothetical7_soc()

    baseline = PowerConstrainedScheduler(
        soc,
        PowerConstrainedConfig(power_limit_w=POWER_CAP_W, sort_descending=False),
    ).schedule()

    # The hypothetical floorplan is not fully tiled (isolated cores), so
    # the session model needs the vertical heat path; stc_scale maps its
    # values onto a convenient limit range.
    model = SessionThermalModel(
        soc, SessionModelConfig(include_vertical=True, stc_scale=25.0)
    )
    audit_base_loose = audit_schedule(baseline, limit_c=1_000.0)
    # Pick a limit between the hottest *individual* core (below which no
    # schedule can exist at all) and the baseline's hottest session:
    # thermally achievable, but invisible to the power cap.
    from repro.thermal import ThermalSimulator

    simulator = ThermalSimulator(soc.floorplan, soc.package, soc.adjacency)
    hottest_alone = max(
        simulator.steady_state({n: soc[n].test_power_w}).temperature_c(n)
        for n in soc.core_names
    )
    hottest_session = audit_base_loose.max_temperature_c
    tl_c = (hottest_alone + hottest_session) / 2.0

    thermal = ThermalAwareScheduler(soc, session_model=model).schedule(
        tl_c=tl_c, stcl=20.0
    )

    audit_base = audit_schedule(baseline, limit_c=tl_c)
    audit_thermal = audit_schedule(thermal.schedule, limit_c=tl_c)

    print(f"Temperature limit for both audits: TL = {tl_c:.1f} degC")
    print()
    print(f"power-constrained (cap {POWER_CAP_W:g} W):")
    print(f"  sessions      : {len(baseline)}")
    print(f"  peak temp     : {audit_base.max_temperature_c:.1f} degC")
    print(f"  hot-spot rate : {audit_base.hot_spot_rate:.0%}")
    print(f"  verdict       : {'SAFE' if audit_base.is_safe else 'UNSAFE'}")
    print()
    print("thermal-aware (Algorithm 1):")
    print(f"  sessions      : {thermal.n_sessions}")
    print(f"  peak temp     : {audit_thermal.max_temperature_c:.1f} degC")
    print(f"  hot-spot rate : {audit_thermal.hot_spot_rate:.0%}")
    print(f"  verdict       : {'SAFE' if audit_thermal.is_safe else 'UNSAFE'}")


if __name__ == "__main__":
    main()

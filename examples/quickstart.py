"""Quickstart: generate a thermal-safe test schedule for the alpha15 SoC.

This is the paper's headline flow end to end:

1. load the calibrated 15-core Alpha-class SoC (floorplan + test powers
   + package);
2. run Algorithm 1 at a temperature limit TL and session-thermal-
   characteristic limit STCL;
3. print the resulting schedule, its metrics, and an independent
   thermal audit.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import ThermalAwareScheduler, alpha15_soc, audit_schedule
from repro.core.session_model import SessionModelConfig, SessionThermalModel
from repro.soc.library import ALPHA15_STC_SCALE

TL_C = 155.0  # maximum allowable temperature (Celsius)
STCL = 60.0  # session thermal characteristic limit


def main() -> None:
    soc = alpha15_soc()
    print(soc.describe())
    print()

    # The session model's STC normalisation is a per-SoC calibration;
    # use the frozen alpha15 constant.
    model = SessionThermalModel(
        soc, SessionModelConfig(stc_scale=ALPHA15_STC_SCALE)
    )
    scheduler = ThermalAwareScheduler(soc, session_model=model)
    result = scheduler.schedule(tl_c=TL_C, stcl=STCL)

    print(result.describe())
    print()
    print(
        f"schedule length : {result.length_s:g} s "
        f"(vs {len(soc)} s purely sequential)"
    )
    print(f"simulation effort: {result.effort_s:g} s of simulated session time")
    print(
        f"peak temperature : {result.max_temperature_c:.2f} degC "
        f"(limit {TL_C:g} degC)"
    )

    # Trust, but verify: re-simulate every session independently.
    audit = audit_schedule(result.schedule, limit_c=TL_C)
    print()
    print(audit.describe())


if __name__ == "__main__":
    main()

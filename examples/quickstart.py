"""Quickstart: generate a thermal-safe test schedule for the alpha15 SoC.

This is the paper's headline flow end to end, through the unified
solver API:

1. ask for the calibrated 15-core Alpha-class SoC by name in a
   :class:`~repro.api.ScheduleRequest` (the STC normalisation is the
   platform's frozen calibration, applied automatically);
2. run Algorithm 1 at a temperature limit TL and session-thermal-
   characteristic limit STCL;
3. print the resulting schedule and metrics, re-audit it
   independently, and contrast it with the thermally blind
   power-constrained baseline — one ``solver=`` switch away.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import ScheduleRequest, Workbench, audit_schedule

TL_C = 155.0  # maximum allowable temperature (Celsius)
STCL = 60.0  # session thermal characteristic limit


def main() -> None:
    workbench = Workbench()
    report = workbench.solve(
        ScheduleRequest(soc="alpha15", tl_c=TL_C, stcl=STCL)
    )
    soc = report.schedule.soc
    print(soc.describe())
    print()

    print(report.describe())
    print()
    print(
        f"schedule length : {report.length_s:g} s "
        f"(vs {len(soc)} s purely sequential)"
    )
    print(f"simulation effort: {report.result.effort_s:g} s of simulated session time")
    print(
        f"peak temperature : {report.max_temperature_c:.2f} degC "
        f"(limit {TL_C:g} degC)"
    )

    # Trust, but verify: re-simulate every session independently.
    audit = audit_schedule(report.schedule, limit_c=TL_C)
    print()
    print(audit.describe())

    # The classic power-constrained baseline on the same workbench
    # (and the same cached thermal model): caps watts, not degrees.
    baseline = workbench.solve(
        ScheduleRequest(soc="alpha15", tl_c=TL_C, solver="power_constrained")
    )
    print()
    print(
        f"power-constrained baseline: length {baseline.length_s:g} s, "
        f"peak {baseline.max_temperature_c:.2f} degC, "
        f"hot-spot rate {baseline.hot_spot_rate * 100:.0f}%"
    )


if __name__ == "__main__":
    main()

"""Thermal deep-dive: heatmaps, transients and the M1 bound.

Everything the paper's 'accurate thermal simulation' does behind the
scenes, made visible:

1. draw the alpha15 floorplan and the test-power density map;
2. simulate the hottest session of a generated schedule and render the
   steady-state temperature field as an ASCII heatmap;
3. show the transient heating curve of the hottest core against its
   steady-state bound — the paper's modification M1 in one picture;
4. quantify the M1 margin for every session, back to back.

Run:  python examples/thermal_analysis.py
"""

from __future__ import annotations

from repro import ThermalAwareScheduler, alpha15_soc
from repro.core.session_model import SessionModelConfig, SessionThermalModel
from repro.floorplan.render import render_floorplan
from repro.soc.library import ALPHA15_STC_SCALE
from repro.thermal import ThermalSimulator, die_node
from repro.thermal.heatmap import render_heatmap, render_power_density_map
from repro.thermal.validation import check_schedule_bound

TL_C = 165.0
STCL = 60.0


def main() -> None:
    soc = alpha15_soc()
    simulator = ThermalSimulator(soc.floorplan, soc.package, soc.adjacency)

    print(render_floorplan(soc.floorplan))
    print("test power density:")
    print(render_power_density_map(soc.floorplan, soc.test_power_map()))

    model = SessionThermalModel(
        soc, SessionModelConfig(stc_scale=ALPHA15_STC_SCALE)
    )
    result = ThermalAwareScheduler(
        soc, simulator=simulator, session_model=model
    ).schedule(tl_c=TL_C, stcl=STCL)
    print(result.describe())
    print()

    hottest = max(result.schedule.sessions, key=lambda s: s.max_temperature_c)
    power = soc.session_power_map(hottest.cores)
    field = simulator.steady_state(power)
    print(f"steady-state heatmap of the hottest session "
          f"[{', '.join(hottest.cores)}]:")
    print(render_heatmap(soc.floorplan, field))

    # Transient heating of the hottest core vs its steady bound (M1).
    hottest_core = field.hottest_block()
    steady_c = field.temperature_c(hottest_core)
    trajectory = simulator.transient(power, duration_s=1.0, dt=5e-3)
    column = trajectory.node_names.index(die_node(hottest_core))
    print(f"transient heating of {hottest_core} during the 1 s session "
          f"(steady bound {steady_c:.1f} degC):")
    samples = range(0, len(trajectory.times), max(1, len(trajectory.times) // 10))
    for index in samples:
        temp = simulator.ambient_c + trajectory.rises[index, column]
        bar = "#" * int(50 * (temp - simulator.ambient_c) / (steady_c - simulator.ambient_c))
        print(f"  t={trajectory.times[index]:5.2f} s  {temp:7.2f} degC |{bar}")
    peak = simulator.ambient_c + trajectory.rises[:, column].max()
    print(f"  transient peak {peak:.2f} degC — "
          f"{steady_c - peak:.1f} degC below the steady-state bound (M1).")
    print()

    # M1 across the whole schedule, sessions back to back.
    check = check_schedule_bound(simulator, result.schedule, cooling_gap_s=0.0)
    print("M1 bound across the schedule (no cooling gaps):")
    for index, session_check in enumerate(check.sessions, start=1):
        print(
            f"  session {index}: tightest margin "
            f"{session_check.min_margin_c:6.2f} degC "
            f"({'holds' if session_check.holds else 'VIOLATED'})"
        )


if __name__ == "__main__":
    main()

"""Setuptools packaging for the ``repro`` library.

The reference environment has no ``wheel`` package, so PEP 660 editable
installs (``pip install -e .``) cannot build; this legacy ``setup.py``
lets both ``pip install -e . --no-build-isolation`` and
``python setup.py develop`` work offline, and installs the console
commands::

    repro           # umbrella command: `repro schedule`, `repro batch`
    repro-schedule  # alias for `repro schedule`
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of 'Rapid Generation of Thermal-Safe Test Schedules' "
        "(DATE 2005) with a batch scheduling engine"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    package_data={"repro": ["py.typed"]},
    python_requires=">=3.10",
    install_requires=["numpy", "scipy"],
    entry_points={
        "console_scripts": [
            "repro=repro.cli:repro_main",
            "repro-schedule=repro.cli:schedule_entry",
        ]
    },
)

"""Legacy setuptools shim.

The reference environment has no ``wheel`` package, so PEP 660 editable
installs (``pip install -e .``) cannot build; this shim lets both
``pip install -e . --no-build-isolation`` (legacy code path) and
``python setup.py develop`` work offline.  All metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
